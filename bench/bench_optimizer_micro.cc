// Micro-benchmarks (google-benchmark) for the optimizer itself: standard
// planning vs PINUM's hooked modes across query sizes — the per-call
// costs underlying Figure 4/5.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "optimizer/optimizer.h"
#include "pinum/pinum_builder.h"

namespace pinum {
namespace {

struct Env {
  StarSchemaWorkload workload = bench::MakePaperWorkload();
  CandidateSet candidates = bench::MakeCandidates(workload);
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

/// Standard optimizer call (stock pruning, no hooks).
void BM_OptimizeStandard(benchmark::State& state) {
  Env& env = GetEnv();
  const Query& q =
      env.workload.queries()[static_cast<size_t>(state.range(0))];
  Optimizer opt(&env.workload.db().catalog(), &env.workload.db().stats());
  for (auto _ : state) {
    auto r = opt.Optimize(q, PlannerKnobs{});
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(q.name + " (" + std::to_string(q.tables.size()) +
                 " tables)");
}
BENCHMARK(BM_OptimizeStandard)->DenseRange(0, 9);

/// Export-mode call (the PINUM plan-cache call, NLJ removed).
void BM_OptimizeExportAllPlans(benchmark::State& state) {
  Env& env = GetEnv();
  const Query& q =
      env.workload.queries()[static_cast<size_t>(state.range(0))];
  Optimizer opt(&env.workload.db().catalog(), &env.workload.db().stats());
  PlannerKnobs knobs;
  knobs.enable_nestloop = false;
  knobs.hooks.export_all_plans = true;
  for (auto _ : state) {
    auto r = opt.Optimize(q, knobs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(q.name);
}
BENCHMARK(BM_OptimizeExportAllPlans)->DenseRange(0, 9);

/// Keep-all-access-paths call over the full candidate universe
/// (the PINUM access-cost call).
void BM_OptimizeKeepAllAccessPaths(benchmark::State& state) {
  Env& env = GetEnv();
  const Query& q =
      env.workload.queries()[static_cast<size_t>(state.range(0))];
  Optimizer opt(&env.candidates.universe, &env.workload.db().stats());
  PlannerKnobs knobs;
  knobs.hooks.keep_all_access_paths = true;
  for (auto _ : state) {
    auto r = opt.Optimize(q, knobs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(q.name);
}
BENCHMARK(BM_OptimizeKeepAllAccessPaths)->DenseRange(0, 9);

/// Cached cost derivation: the arithmetic that replaces optimizer calls.
void BM_InumCostDerivation(benchmark::State& state) {
  Env& env = GetEnv();
  const Query& q = env.workload.queries()[5];
  static InumCache* cache = [&] {
    PinumBuildOptions opts;
    auto c = BuildInumCachePinum(q, env.workload.db().catalog(),
                                 env.candidates, env.workload.db().stats(),
                                 opts, nullptr);
    return new InumCache(std::move(*c));
  }();
  Rng rng(1);
  std::vector<IndexConfig> configs;
  for (int i = 0; i < 64; ++i) {
    configs.push_back(bench::RandomAtomicConfig(q, env.candidates, &rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache->Cost(configs[i++ % configs.size()]));
  }
}
BENCHMARK(BM_InumCostDerivation);

}  // namespace
}  // namespace pinum

BENCHMARK_MAIN();
