// Degraded-mode serving: when every reseal fails (injected via the
// workload.build_query failpoint) the engine must keep answering from
// the last good generation at close to healthy throughput — degraded
// means "maintenance is behind", never "serving is down". The harness
// measures steady-state throughput healthy, then throughput while the
// drift watcher is retrying a persistently failing reseal with
// backoff (health kDegraded), then verifies automatic recovery once
// the fault clears. It doubles as a correctness guard: every degraded
// answer must be bitwise what the last good generation computes, the
// recovered generation must equal a cold rebuild under the drifted
// world, and the health/stat transitions must actually happen.
//
//   $ ./bench_degraded_serving [replicas] [--smoke] [--json out.json]
//                              [--min-ratio X] [--seed S]
//
// --min-ratio X fails the run (exit 1) when degraded throughput falls
// below X * healthy throughput — the floor CI enforces so a future
// regression cannot quietly make degraded mode unserving.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "advisor/greedy_advisor.h"
#include "bench_util.h"
#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "serving/serving_engine.h"
#include "workload/cache_manager.h"
#include "workload/drift.h"

namespace pinum {
namespace {

struct ServePhase {
  double qps = 0;
  double max_latency_ms = 0;
};

/// Serves `iters` requests round-robin; when `expect` is non-null,
/// every answer is checked bitwise against it (exit-on-divergence via
/// the returned ok flag).
bool ServePhaseRun(const ServingEngine& engine,
                   const std::vector<IndexConfig>& configs, int iters,
                   const WorkloadCostEvaluator* expect, const char* where,
                   ServePhase* out) {
  Stopwatch phase_timer;
  for (int i = 0; i < iters; ++i) {
    const IndexConfig& config = configs[static_cast<size_t>(i) %
                                        configs.size()];
    Stopwatch request_timer;
    const CostAnswer answer = engine.Cost(config);
    out->max_latency_ms =
        std::max(out->max_latency_ms, request_timer.ElapsedMillis());
    if (!answer.status.ok()) {
      std::fprintf(stderr, "FAIL (%s): serving answered %s\n", where,
                   answer.status.ToString().c_str());
      return false;
    }
    if (expect != nullptr && answer.cost != expect->Cost(config)) {
      std::fprintf(stderr,
                   "FAIL (%s): answer diverges from the last good "
                   "generation on request %d\n",
                   where, i);
      return false;
    }
  }
  out->qps = iters / (phase_timer.ElapsedMillis() / 1000.0);
  return true;
}

/// Polls until `pred` holds or `budget` elapses.
template <typename Pred>
bool WaitFor(Pred pred, std::chrono::seconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

int Run(int replicas, bool smoke, const std::string& json_path,
        double min_ratio, uint64_t seed) {
  auto setup = bench::MakeServingSetup(replicas);
  if (setup == nullptr) return 1;
  const std::vector<Query>& queries = setup->queries;
  std::printf("# degraded serving: %zu queries (%dx replication), "
              "%zu candidates, fault seed %llu\n",
              queries.size(), replicas, setup->set.candidate_ids.size(),
              static_cast<unsigned long long>(seed));

  ServingOptions options;
  options.pool = setup->builder->pool();
  options.maintenance.max_retries = 2;
  options.maintenance.initial_backoff = std::chrono::milliseconds(1);
  options.maintenance.jitter_seed = seed;
  ServingEngine engine(setup->builder.get(), &queries,
                       std::move(setup->built), options);

  Rng rng(521 + seed);
  std::vector<IndexConfig> configs;
  const int num_configs = smoke ? 8 : 24;
  for (int i = 0; i < num_configs; ++i) {
    configs.push_back(bench::RandomAtomicConfig(
        queries[static_cast<size_t>(i) % queries.size()], setup->set, &rng));
  }
  const int iters = smoke ? 200 : 2000;

  // ---- Phase A: healthy steady state ----
  ServePhase healthy;
  if (!ServePhaseRun(engine, configs, iters, nullptr, "healthy", &healthy)) {
    return 1;
  }

  // ---- Phase B: drift lands while every reseal fails ----
  // The watcher retries with backoff, health degrades after
  // max_retries consecutive failures, and serving keeps answering the
  // last good generation's exact bits throughout.
  FailPoint::Config fault;
  fault.status = Status::Unavailable("injected: stats store offline");
  FailPoint::Arm("workload.build_query", fault);
  engine.StartDriftWatcher(std::chrono::milliseconds(1));
  {
    // The watcher is already polling: every world mutation must go
    // through WithWorld to serialize against its stamp reads.
    Status drift_status;
    engine.WithWorld([&] {
      auto drift = ApplyDrift(queries, &setup->set,
                              &setup->workload.db().stats(),
                              queries.size(), seed);
      drift_status = drift.ok() ? Status::OK() : drift.status();
    });
    if (!drift_status.ok()) {
      std::fprintf(stderr, "%s\n", drift_status.ToString().c_str());
      return 1;
    }
  }
  if (!WaitFor([&] {
        return engine.Health().state == HealthState::kDegraded;
      }, std::chrono::seconds(30))) {
    std::fprintf(stderr, "FAIL: engine never reported kDegraded\n");
    return 1;
  }
  const auto last_good = engine.Pin();
  WorkloadCostEvaluator last_good_eval(&last_good->sealed());
  ServePhase degraded;
  if (!ServePhaseRun(engine, configs, iters, &last_good_eval, "degraded",
                     &degraded)) {
    return 1;
  }
  if (engine.CurrentGenerationId() != last_good->id) {
    std::fprintf(stderr, "FAIL: a failing reseal published generation"
                 " %llu\n",
                 static_cast<unsigned long long>(
                     engine.CurrentGenerationId()));
    return 1;
  }

  // ---- Phase C: fault clears, the watcher recovers on its own ----
  FailPoint::DisarmAll();
  if (!WaitFor([&] {
        return engine.Health().state == HealthState::kHealthy &&
               engine.CurrentGenerationId() > last_good->id;
      }, std::chrono::seconds(30))) {
    std::fprintf(stderr, "FAIL: engine never recovered to kHealthy\n");
    return 1;
  }
  engine.StopDriftWatcher();
  ServePhase recovered;
  if (!ServePhaseRun(engine, configs, iters, nullptr, "recovered",
                     &recovered)) {
    return 1;
  }

  // Recovered generation == cold rebuild under the drifted world.
  {
    WorkloadCacheBuilder cold(&setup->workload.db().catalog(), &setup->set,
                              &setup->workload.db().stats());
    auto cold_built = cold.BuildAll(queries);
    if (!cold_built.ok()) {
      std::fprintf(stderr, "%s\n", cold_built.status().ToString().c_str());
      return 1;
    }
    WorkloadCostEvaluator cold_eval(&cold_built->sealed);
    for (size_t i = 0; i < configs.size(); ++i) {
      if (engine.Cost(configs[i]).cost != cold_eval.Cost(configs[i])) {
        std::fprintf(stderr, "FAIL: recovered generation diverges from"
                     " cold rebuild on config %zu\n", i);
        return 1;
      }
    }
  }

  const ServingStats stats = engine.Stats();
  if (stats.reseal_failures < 2 || stats.recoveries < 1) {
    std::fprintf(stderr,
                 "FAIL: expected >=2 reseal failures and >=1 recovery, "
                 "got %llu / %llu\n",
                 static_cast<unsigned long long>(stats.reseal_failures),
                 static_cast<unsigned long long>(stats.recoveries));
    return 1;
  }

  const double degraded_ratio =
      healthy.qps > 0 ? degraded.qps / healthy.qps : 0;
  std::printf("%-28s %12s %14s\n", "phase", "qps", "worst-req-ms");
  std::printf("%-28s %12.0f %14.3f\n", "healthy", healthy.qps,
              healthy.max_latency_ms);
  std::printf("%-28s %12.0f %14.3f   (%.2fx of healthy)\n",
              "degraded (reseals failing)", degraded.qps,
              degraded.max_latency_ms, degraded_ratio);
  std::printf("%-28s %12.0f %14.3f\n", "recovered", recovered.qps,
              recovered.max_latency_ms);
  std::printf("# reseal attempts %llu, failures %llu, recoveries %llu; "
              "final generation %llu\n",
              static_cast<unsigned long long>(stats.reseal_attempts),
              static_cast<unsigned long long>(stats.reseal_failures),
              static_cast<unsigned long long>(stats.recoveries),
              static_cast<unsigned long long>(
                  engine.CurrentGenerationId()));

  if (!json_path.empty()) {
    bench::JsonSummary summary;
    summary.Set("bench", std::string("degraded_serving"));
    summary.Set("replicas", static_cast<int64_t>(replicas));
    summary.Set("queries", static_cast<int64_t>(queries.size()));
    summary.Set("fault_seed", static_cast<int64_t>(seed));
    summary.Set("healthy_qps", healthy.qps);
    summary.Set("healthy_max_latency_ms", healthy.max_latency_ms);
    summary.Set("degraded_qps", degraded.qps);
    summary.Set("degraded_max_latency_ms", degraded.max_latency_ms);
    summary.Set("degraded_ratio", degraded_ratio);
    summary.Set("recovered_qps", recovered.qps);
    summary.Set("reseal_attempts",
                static_cast<int64_t>(stats.reseal_attempts));
    summary.Set("reseal_failures",
                static_cast<int64_t>(stats.reseal_failures));
    summary.Set("recoveries", static_cast<int64_t>(stats.recoveries));
    summary.Set("min_ratio", min_ratio);
    summary.Set("final_generation",
                static_cast<int64_t>(engine.CurrentGenerationId()));
    if (!summary.WriteTo(json_path)) return 1;
  }

  if (min_ratio > 0 && degraded_ratio < min_ratio) {
    std::fprintf(stderr,
                 "FAIL: degraded throughput %.2fx of healthy, below the "
                 "%.2fx floor\n",
                 degraded_ratio, min_ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  int replicas = -1;  // unspecified: 3x, or 1x under --smoke
  bool smoke = false;
  std::string json_path;
  double min_ratio = 0;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-ratio") == 0 && i + 1 < argc) {
      min_ratio = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      replicas = std::atoi(argv[i]);
      if (replicas < 1) replicas = 1;
    }
  }
  if (replicas < 0) replicas = smoke ? 1 : 3;
  return pinum::Run(replicas, smoke, json_path, min_ratio, seed);
}
