// Figure 6/7 — workload performance improvement from the index
// selection tool.
//
// Materializes the star schema, runs the greedy advisor (PINUM cost
// model, space budget = 50% of the database, mirroring the paper's 5 GB
// against 10 GB), builds the suggested indexes for real, and reports
// measured per-query execution times before/after.
//
// Paper claims: 95% average workload speed-up; suggestions dominated by
// covering fact-table indexes plus order indexes on dimension tables.
#include <cstdio>

#include "advisor/greedy_advisor.h"
#include "bench_util.h"
#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "pinum/pinum_builder.h"

namespace pinum {
namespace {

int Run() {
  StarSchemaSpec spec;
  spec.scale = 0.01;  // fact: 600k rows materialized
  auto wl = StarSchemaWorkload::Create(spec);
  if (!wl.ok()) return 1;
  StarSchemaWorkload& w = *wl;
  if (auto s = w.Materialize(1.0); !s.ok()) {
    std::fprintf(stderr, "materialize: %s\n", s.ToString().c_str());
    return 1;
  }
  Database& db = w.db();

  // The paper executes on a disk-resident PostgreSQL; our substrate
  // executes in memory, so this experiment calibrates the cost model for
  // memory-resident data (PostgreSQL's own guidance: page costs ~0 when
  // everything is cached, CPU terms dominate). Every other experiment
  // uses the stock disk constants.
  PlannerKnobs mem_knobs;
  mem_knobs.cost.seq_page_cost = 0.05;
  mem_knobs.cost.random_page_cost = 0.06;

  // Database size (heap bytes) -> budget = 50%.
  int64_t heap_bytes = 0;
  for (TableId t : w.tables()) {
    heap_bytes += static_cast<int64_t>(db.stats().Find(t)->heap_pages) *
                  PageLayout::kPageSize;
  }

  CandidateOptions copt;
  auto cands =
      GenerateCandidates(w.queries(), db.catalog(), db.stats(), copt);
  auto set = MakeCandidateSet(db.catalog(), cands);
  if (!set.ok()) return 1;

  std::vector<InumCache> caches;
  for (const Query& q : w.queries()) {
    PinumBuildOptions popts;
    popts.base_knobs = mem_knobs;
    auto cache = BuildInumCachePinum(q, db.catalog(), *set, db.stats(),
                                     popts, nullptr);
    if (!cache.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                   cache.status().ToString().c_str());
      return 1;
    }
    caches.push_back(std::move(*cache));
  }

  AdvisorOptions aopts;
  aopts.budget_bytes = heap_bytes / 2;
  const AdvisorResult advice = RunGreedyAdvisor(caches, *set, aopts);

  std::printf("# Figure 6/7: index selection benefit (materialized run)\n");
  std::printf("# database %.1f MB, budget %.1f MB, %zu candidates, "
              "%lld cache evaluations (zero optimizer calls)\n",
              heap_bytes / 1048576.0, aopts.budget_bytes / 1048576.0,
              set->candidate_ids.size(),
              static_cast<long long>(advice.evaluations));
  std::printf("# suggested %zu indexes (%.1f MB):\n", advice.chosen.size(),
              advice.total_size_bytes / 1048576.0);
  for (IndexId id : advice.chosen) {
    const IndexDef* def = set->universe.FindIndex(id);
    const TableDef* table = db.catalog().FindTable(def->table);
    std::printf("#   %s on %s (%zu key cols, %.1f MB)\n", def->name.c_str(),
                table->name.c_str(), def->key_columns.size(),
                IndexSizeBytes(*def) / 1048576.0);
  }

  // Execute before/after.
  PlanExecutor exec(&db);
  Optimizer base_opt(&db.catalog(), &db.stats());
  std::vector<double> before_ms(w.queries().size());
  std::vector<int64_t> rows(w.queries().size());
  std::vector<uint64_t> checksums(w.queries().size());
  for (size_t i = 0; i < w.queries().size(); ++i) {
    auto plan = base_opt.Optimize(w.queries()[i], mem_knobs);
    if (!plan.ok()) return 1;
    auto r = exec.Execute(w.queries()[i], *plan->best);
    if (!r.ok()) {
      std::fprintf(stderr, "exec %s: %s\n", w.queries()[i].name.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    before_ms[i] = r->millis;
    rows[i] = r->rows;
    checksums[i] = r->checksum;
  }

  for (IndexId id : advice.chosen) {
    const IndexDef* def = set->universe.FindIndex(id);
    auto built =
        db.BuildIndex("built_" + def->name, def->table, def->key_columns);
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
  }

  std::printf("%-5s %-12s %-12s %-10s %-8s\n", "query", "orig_ms",
              "indexed_ms", "speedup", "checks");
  Optimizer indexed_opt(&db.catalog(), &db.stats());
  double sum_impr = 0;
  for (size_t i = 0; i < w.queries().size(); ++i) {
    auto plan = indexed_opt.Optimize(w.queries()[i], mem_knobs);
    if (!plan.ok()) return 1;
    auto r = exec.Execute(w.queries()[i], *plan->best);
    if (!r.ok()) {
      std::fprintf(stderr, "exec %s: %s\n", w.queries()[i].name.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    const bool same =
        r->rows == rows[i] && r->checksum == checksums[i] && r->ordered_ok;
    const double impr = 1.0 - r->millis / std::max(1e-3, before_ms[i]);
    sum_impr += impr;
    std::printf("%-5s %-12.1f %-12.1f %-10.1f %-8s\n",
                w.queries()[i].name.c_str(), before_ms[i], r->millis,
                before_ms[i] / std::max(1e-3, r->millis),
                same ? "ok" : "MISMATCH");
  }
  std::printf("# average improvement: %.1f%%   (paper: 95%% average)\n",
              100 * sum_impr / static_cast<double>(w.queries().size()));
  return 0;
}

}  // namespace
}  // namespace pinum

int main() { return pinum::Run(); }
