// Always-on serving vs stop-the-world reseal: when the world drifts,
// a serving layer without generation swaps must stall every request
// for the full reseal (nothing can be priced while the caches are
// being rebuilt in place), while the ServingEngine keeps answering
// from the pinned old generation and publishes the new one with an
// atomic swap. The headline number is the stall shrink: the worst
// request latency observed across a reseal window, stop-the-world over
// concurrent. Throughput parity is NOT the metric — on a single core
// the reseal and the readers share cycles either way — the stall is.
//
//   $ ./bench_live_serving [replicas] [--smoke] [--json out.json]
//                          [--min-speedup X] [--seed S]
//
// --smoke shrinks replication to 1x for CI/sanitizer runs but still
// exercises serve -> drift -> concurrent reseal -> verify end to end,
// failing (exit 1) on any divergence. --min-speedup X additionally
// fails the run when the stall shrink is below X. Like
// bench_incremental_reseal, the harness doubles as a CI guard: every
// post-reseal generation must answer sampled configurations bitwise
// identically to a cold rebuild under the drifted world.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "advisor/greedy_advisor.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "serving/serving_engine.h"
#include "workload/cache_manager.h"
#include "workload/drift.h"

namespace pinum {
namespace {

/// Serves `configs` round-robin until `stop`, recording the worst
/// single-request latency and the request count.
struct ServeStats {
  double max_latency_ms = 0;
  int64_t requests = 0;
};

ServeStats ServeUntil(const ServingEngine& engine,
                      const std::vector<IndexConfig>& configs,
                      const std::atomic<bool>& stop) {
  ServeStats stats;
  size_t i = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    Stopwatch request_timer;
    (void)engine.Cost(configs[i % configs.size()]);
    stats.max_latency_ms =
        std::max(stats.max_latency_ms, request_timer.ElapsedMillis());
    ++stats.requests;
    ++i;
  }
  return stats;
}

/// Bitwise identity guard: the engine's current generation vs a cold
/// rebuild under the (drifted) world the builder is bound to.
bool VerifyAgainstColdRebuild(ServingEngine* engine,
                              bench::ServingSetup* setup,
                              const std::vector<IndexConfig>& configs,
                              const char* where) {
  WorkloadCacheBuilder cold_builder(&setup->workload.db().catalog(),
                                    &setup->set,
                                    &setup->workload.db().stats());
  auto cold = cold_builder.BuildAll(setup->queries);
  if (!cold.ok()) {
    std::fprintf(stderr, "%s\n", cold.status().ToString().c_str());
    return false;
  }
  WorkloadCostEvaluator cold_eval(&cold->sealed);
  for (size_t i = 0; i < configs.size(); ++i) {
    const double served = engine->Cost(configs[i]).cost;
    const double rebuilt = cold_eval.Cost(configs[i]);
    if (served != rebuilt) {
      std::fprintf(stderr,
                   "FAIL (%s): served cost diverges from cold rebuild on"
                   " config %zu: %.17g vs %.17g\n",
                   where, i, served, rebuilt);
      return false;
    }
  }
  return true;
}

int Run(int replicas, bool smoke, const std::string& json_path,
        double min_speedup, uint64_t seed) {
  auto setup = bench::MakeServingSetup(replicas);
  if (setup == nullptr) return 1;
  const std::vector<Query>& queries = setup->queries;
  std::printf("# live serving: %zu queries (%dx replication), "
              "%zu candidates, drift seed %llu\n",
              queries.size(), replicas, setup->set.candidate_ids.size(),
              static_cast<unsigned long long>(seed));

  ServingOptions options;
  options.pool = setup->builder->pool();
  ServingEngine engine(setup->builder.get(), &queries,
                       std::move(setup->built), options);

  Rng rng(433);
  std::vector<IndexConfig> configs;
  const int num_configs = smoke ? 8 : 24;
  for (int i = 0; i < num_configs; ++i) {
    configs.push_back(bench::RandomAtomicConfig(
        queries[static_cast<size_t>(i) % queries.size()], setup->set, &rng));
  }

  // ---- Phase A: steady state, no reseals (the latency baseline) ----
  const int warm_iters = smoke ? 50 : 400;
  Stopwatch warm_timer;
  double baseline_max_ms = 0;
  for (int i = 0; i < warm_iters; ++i) {
    Stopwatch request_timer;
    (void)engine.Cost(configs[static_cast<size_t>(i) % configs.size()]);
    baseline_max_ms =
        std::max(baseline_max_ms, request_timer.ElapsedMillis());
  }
  const double warm_ms = warm_timer.ElapsedMillis();
  const double baseline_qps = warm_iters / (warm_ms / 1000.0);

  // ---- Phase B: stop-the-world reseal ----
  // Without generation swaps a reseal rebuilds the served caches in
  // place: no request can be answered while it runs, so the request
  // that arrives as the drift lands waits out the whole rebuild. That
  // serialization is exactly a blocking Reseal on the serving thread.
  auto drift_b = ApplyDrift(queries, &setup->set,
                            &setup->workload.db().stats(), queries.size(),
                            seed);
  if (!drift_b.ok()) {
    std::fprintf(stderr, "%s\n", drift_b.status().ToString().c_str());
    return 1;
  }
  double stop_world_max_ms = 0;
  {
    Stopwatch stalled_request;
    const Status resealed = engine.Reseal(drift_b->stale_queries);
    if (!resealed.ok()) {
      std::fprintf(stderr, "%s\n", resealed.ToString().c_str());
      return 1;
    }
    (void)engine.Cost(configs[0]);
    stop_world_max_ms = stalled_request.ElapsedMillis();
  }
  if (!VerifyAgainstColdRebuild(&engine, setup.get(), configs,
                                "stop-the-world")) {
    return 1;
  }

  // ---- Phase C: the same reseal concurrent with serving ----
  auto drift_c = ApplyDrift(queries, &setup->set,
                            &setup->workload.db().stats(), queries.size(),
                            seed + 1);
  if (!drift_c.ok()) {
    std::fprintf(stderr, "%s\n", drift_c.status().ToString().c_str());
    return 1;
  }
  std::atomic<bool> reseal_done{false};
  Status concurrent_status = Status::OK();
  Stopwatch concurrent_timer;
  std::thread maintenance([&] {
    concurrent_status = engine.Reseal(drift_c->stale_queries);
    reseal_done.store(true, std::memory_order_relaxed);
  });
  const ServeStats live = ServeUntil(engine, configs, reseal_done);
  maintenance.join();
  const double concurrent_reseal_ms = concurrent_timer.ElapsedMillis();
  if (!concurrent_status.ok()) {
    std::fprintf(stderr, "%s\n", concurrent_status.ToString().c_str());
    return 1;
  }
  if (live.requests == 0) {
    std::fprintf(stderr, "FAIL: no requests served during the concurrent"
                 " reseal window\n");
    return 1;
  }
  if (!VerifyAgainstColdRebuild(&engine, setup.get(), configs,
                                "concurrent")) {
    return 1;
  }

  const double stall_shrink =
      stop_world_max_ms /
      (live.max_latency_ms > 0 ? live.max_latency_ms : 1e-9);
  const uint64_t generation = engine.CurrentGenerationId();

  std::printf("%-34s %14s %14s\n", "regime", "worst-req-ms", "served-reqs");
  std::printf("%-34s %14.3f %14d\n", "steady state (no reseal)",
              baseline_max_ms, warm_iters);
  std::printf("%-34s %14.1f %14s\n", "stop-the-world reseal",
              stop_world_max_ms, "0 (stalled)");
  std::printf("%-34s %14.3f %14lld   (stall shrunk %.1fx)\n",
              "concurrent reseal (gen swap)", live.max_latency_ms,
              static_cast<long long>(live.requests), stall_shrink);
  std::printf("# reseal wall: %.1f ms concurrent; final generation %llu\n",
              concurrent_reseal_ms,
              static_cast<unsigned long long>(generation));

  if (!json_path.empty()) {
    bench::JsonSummary summary;
    summary.Set("bench", std::string("live_serving"));
    summary.Set("replicas", static_cast<int64_t>(replicas));
    summary.Set("queries", static_cast<int64_t>(queries.size()));
    summary.Set("candidates",
                static_cast<int64_t>(setup->set.candidate_ids.size()));
    summary.Set("drift_seed", static_cast<int64_t>(seed));
    summary.Set("baseline_qps", baseline_qps);
    summary.Set("baseline_max_latency_ms", baseline_max_ms);
    summary.Set("stop_world_stall_ms", stop_world_max_ms);
    summary.Set("concurrent_max_latency_ms", live.max_latency_ms);
    summary.Set("concurrent_requests_served", live.requests);
    summary.Set("concurrent_reseal_ms", concurrent_reseal_ms);
    summary.Set("stall_shrink", stall_shrink);
    summary.Set("min_speedup", min_speedup);
    summary.Set("final_generation", static_cast<int64_t>(generation));
    if (!summary.WriteTo(json_path)) return 1;
  }

  if (min_speedup > 0 && stall_shrink < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: stall shrink %.1fx below the %.1fx floor\n",
                 stall_shrink, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  int replicas = -1;  // unspecified: 3x, or 1x under --smoke
  bool smoke = false;
  std::string json_path;
  double min_speedup = 0;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      replicas = std::atoi(argv[i]);
      if (replicas < 1) replicas = 1;
    }
  }
  if (replicas < 0) replicas = smoke ? 1 : 3;
  return pinum::Run(replicas, smoke, json_path, min_speedup, seed);
}
