// Section VI-B — what-if index accuracy.
//
// Compares the optimizer's query cost when indexes are *really built*
// (true page counts, including internal B-tree pages) against the cost
// when the same indexes are merely simulated (leaf-page-only what-if
// estimates), over 50 random index sets.
//
// Paper claims: average error 0.33%, maximum 1.05%, caused by ignoring
// the internal pages of the B-tree.
#include <cstdio>

#include "bench_util.h"
#include "optimizer/optimizer.h"
#include "whatif/whatif_index.h"

namespace pinum {
namespace {

int Run() {
  StarSchemaSpec spec;
  spec.scale = 0.02;  // fact: 1.2M rows materialized
  auto w = StarSchemaWorkload::Create(spec);
  if (!w.ok()) return 1;
  if (auto s = w->Materialize(1.0); !s.ok()) {
    std::fprintf(stderr, "materialize: %s\n", s.ToString().c_str());
    return 1;
  }
  Database& db = w->db();

  CandidateOptions copt;
  auto candidates = GenerateCandidates(w->queries(), db.catalog(),
                                       db.stats(), copt);

  std::printf("# Section VI-B: what-if vs real index cost accuracy\n");
  std::printf("# 50 random index sets, fact rows = 1.2M (materialized)\n");
  Rng rng(2010);
  double sum_err = 0, max_err = 0;
  int trials = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const Query& q = w->queries()[rng.Index(w->queries().size())];
    // Pick 1-3 random candidates on the query's tables.
    std::vector<const IndexDef*> picks;
    for (int k = 0; k < 8 && picks.size() < 1 + rng.Index(3); ++k) {
      const IndexDef& cand = candidates[rng.Index(candidates.size())];
      if (q.PosOfTable(cand.table) >= 0) picks.push_back(&cand);
    }
    if (picks.empty()) continue;

    // (a) really build the indexes.
    std::vector<IndexId> built;
    bool ok = true;
    for (const IndexDef* p : picks) {
      auto id = db.BuildIndex("real_" + std::to_string(trial) + "_" + p->name,
                              p->table, p->key_columns);
      if (!id.ok()) {
        ok = false;
        break;
      }
      built.push_back(*id);
    }
    if (!ok) continue;
    Optimizer real_opt(&db.catalog(), &db.stats());
    auto real = real_opt.Optimize(q, PlannerKnobs{});
    for (IndexId id : built) (void)db.DropIndex(id);
    if (!real.ok()) continue;

    // (b) simulate the same indexes with what-if statistics.
    std::vector<IndexDef> hypo;
    for (const IndexDef* p : picks) {
      const TableStats* tstats = db.stats().Find(p->table);
      hypo.push_back(MakeWhatIfIndex(
          "whatif_" + std::to_string(trial) + "_" + p->name,
          *db.catalog().FindTable(p->table), p->key_columns,
          tstats->row_count));
    }
    auto overlay = CatalogWithIndexes(db.catalog(), hypo, nullptr);
    if (!overlay.ok()) continue;
    Optimizer whatif_opt(&*overlay, &db.stats());
    auto simulated = whatif_opt.Optimize(q, PlannerKnobs{});
    if (!simulated.ok()) continue;

    const double err = std::abs(simulated->best->cost.total -
                                real->best->cost.total) /
                       real->best->cost.total;
    sum_err += err;
    max_err = std::max(max_err, err);
    ++trials;
  }
  std::printf("trials            %d\n", trials);
  std::printf("avg error         %.3f%%   (paper: 0.33%%)\n",
              100 * sum_err / std::max(1, trials));
  std::printf("max error         %.3f%%   (paper: 1.05%%)\n", 100 * max_err);
  return 0;
}

}  // namespace
}  // namespace pinum

int main() { return pinum::Run(); }
