// Greedy-advisor iteration throughput: the PR-2 batched path (every
// candidate's chosen + {cand} configuration re-resolved from scratch —
// O(|chosen| x terms) per candidate) vs the delta path (each query pins
// chosen into a CostContext once per iteration, then every candidate is
// a posting-list overlay — O(postings) per candidate). The two must
// return bit-identical AdvisorResults (same chosen ids, same step
// costs, same evaluation counts); the speedup is the point, and this
// harness doubles as the CI guard that it never silently regresses.
//
//   $ ./bench_advisor_scale [replicas] [--smoke] [--json out.json]
//                           [--min-speedup X]
//
// --smoke shrinks the workload (1x replication unless overridden) and
// the timing passes for CI/sanitizer runs; it still exercises
// build -> seal -> both advisor paths end to end and fails (exit 1) on
// any divergence. --min-speedup X additionally fails the run when the
// delta path's speedup over the batched path drops below X.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advisor/greedy_advisor.h"
#include "bench_util.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "workload/cache_manager.h"

namespace pinum {
namespace {

/// Exact equality of every field the advisor reports. Costs and
/// benefits are doubles compared with ==: the delta path's contract is
/// bit-identical pricing, not approximate agreement.
bool SameResult(const AdvisorResult& a, const AdvisorResult& b,
                std::string* why) {
  auto fail = [&](const std::string& reason) {
    *why = reason;
    return false;
  };
  if (a.chosen != b.chosen) return fail("chosen index sets differ");
  if (a.steps.size() != b.steps.size()) return fail("step counts differ");
  for (size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].chosen != b.steps[i].chosen ||
        a.steps[i].benefit != b.steps[i].benefit ||
        a.steps[i].size_bytes != b.steps[i].size_bytes ||
        a.steps[i].workload_cost_after != b.steps[i].workload_cost_after) {
      return fail("step " + std::to_string(i) + " differs");
    }
  }
  if (a.workload_cost_before != b.workload_cost_before ||
      a.workload_cost_after != b.workload_cost_after) {
    return fail("workload costs differ");
  }
  if (a.total_size_bytes != b.total_size_bytes) {
    return fail("total sizes differ");
  }
  if (a.evaluations != b.evaluations) return fail("evaluation counts differ");
  // full_evaluations is deliberately NOT compared: it counts full-path
  // resolutions, which is exactly what differs between the two paths
  // (src/advisor/greedy_advisor.h).
  return true;
}

int Run(int replicas, bool smoke, const std::string& json_path,
        double min_speedup) {
  auto setup = bench::MakeServingSetup(replicas);
  if (setup == nullptr) return 1;
  CandidateSet& set = setup->set;
  const std::vector<Query>& queries = setup->queries;
  WorkloadCacheBuilder& builder = *setup->builder;
  WorkloadCacheResult* built = &setup->built;
  std::printf("# advisor scale: %zu queries (%dx replication), "
              "%zu candidates, SIMD backend %s\n",
              queries.size(), replicas, set.candidate_ids.size(),
              simd::BackendName());
  std::printf("# build %.1f ms (seal %.1f ms); %zu plans, %zu terms, "
              "%zu postings over %lld universe ids\n",
              built->totals.wall_ms, built->totals.seal_ms,
              built->totals.plans_cached, built->totals.terms,
              built->totals.postings,
              static_cast<long long>(set.NumIndexIds()));

  const WorkloadCostEvaluator evaluator(&built->sealed, builder.pool());
  // Full greedy sweep: no benefit floor, so the advisor keeps iterating
  // until no candidate strictly improves the workload (or the budget is
  // exhausted). This is the advisor's worst-case serving load — exactly
  // the regime the delta path exists for — and it keeps the measured
  // run dominated by candidate sweeps rather than by the stop check.
  AdvisorOptions batched_opts;
  batched_opts.min_relative_benefit = 0;
  batched_opts.cost_path = AdvisorCostPath::kBatched;
  AdvisorOptions delta_opts = batched_opts;
  delta_opts.cost_path = AdvisorCostPath::kDelta;

  // Both runs are deterministic; repeat each pass enough times to get
  // well above timer granularity and take the best per-run pass time.
  const int passes = smoke ? 2 : 5;
  auto measure = [&](const AdvisorOptions& options, AdvisorResult* result) {
    // Calibrate repetitions off one untimed run.
    Stopwatch calibrate;
    *result = RunGreedyAdvisor(evaluator, set, options);
    const double once_ms = calibrate.ElapsedMillis();
    const int reps =
        smoke ? 1 : std::max(1, static_cast<int>(100.0 / (once_ms + 0.01)));
    double best_ms = once_ms;
    for (int p = 0; p < passes; ++p) {
      Stopwatch timer;
      for (int r = 0; r < reps; ++r) {
        *result = RunGreedyAdvisor(evaluator, set, options);
      }
      const double ms = timer.ElapsedMillis() / reps;
      if (ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };

  AdvisorResult batched;
  AdvisorResult delta;
  const double batched_ms = measure(batched_opts, &batched);
  const double delta_ms = measure(delta_opts, &delta);

  std::string why;
  if (!SameResult(batched, delta, &why)) {
    std::fprintf(stderr, "FAIL: delta path diverges from batched path: %s\n",
                 why.c_str());
    return 1;
  }

  const int64_t iterations = static_cast<int64_t>(delta.steps.size()) + 1;
  const double speedup = batched_ms / (delta_ms > 0 ? delta_ms : 1e-9);
  auto rate = [&](double ms) {
    return static_cast<double>(iterations) / ((ms > 0 ? ms : 1e-9) / 1000.0);
  };
  std::printf("# %zu indexes chosen over %lld iterations "
              "(%lld cache evaluations); cost %.6g -> %.6g\n",
              delta.chosen.size(), static_cast<long long>(iterations),
              static_cast<long long>(delta.evaluations),
              delta.workload_cost_before, delta.workload_cost_after);
  std::printf("%-28s %12s %14s %10s\n", "path", "advisor-ms", "iters/s",
              "speedup");
  std::printf("%-28s %12.1f %14.1f %9.2fx\n", "batched (PR-2 sealed)",
              batched_ms, rate(batched_ms), 1.0);
  std::printf("%-28s %12.1f %14.1f %9.2fx\n",
              "delta (contexts + postings)", delta_ms, rate(delta_ms),
              speedup);

  if (!json_path.empty()) {
    bench::JsonSummary summary;
    summary.Set("bench", std::string("advisor_scale"));
    summary.Set("simd_backend", std::string(simd::BackendName()));
    summary.Set("replicas", static_cast<int64_t>(replicas));
    summary.Set("queries", static_cast<int64_t>(queries.size()));
    summary.Set("candidates",
                static_cast<int64_t>(set.candidate_ids.size()));
    summary.Set("universe_ids", static_cast<int64_t>(set.NumIndexIds()));
    summary.Set("plans_cached",
                static_cast<int64_t>(built->totals.plans_cached));
    summary.Set("terms", static_cast<int64_t>(built->totals.terms));
    summary.Set("postings", static_cast<int64_t>(built->totals.postings));
    summary.Set("build_ms", built->totals.wall_ms);
    summary.Set("seal_ms", built->totals.seal_ms);
    summary.Set("chosen_indexes", static_cast<int64_t>(delta.chosen.size()));
    summary.Set("iterations", iterations);
    summary.Set("evaluations", delta.evaluations);
    summary.Set("workload_cost_before", delta.workload_cost_before);
    summary.Set("workload_cost_after", delta.workload_cost_after);
    summary.Set("batched_ms", batched_ms);
    summary.Set("delta_ms", delta_ms);
    summary.Set("batched_iters_per_s", rate(batched_ms));
    summary.Set("delta_iters_per_s", rate(delta_ms));
    summary.Set("speedup", speedup);
    summary.Set("min_speedup", min_speedup);
    if (!summary.WriteTo(json_path)) return 1;
  }

  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: delta speedup %.2fx below the %.2fx floor\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  int replicas = -1;  // unspecified: 3x, or 1x under --smoke
  bool smoke = false;
  std::string json_path;
  double min_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      replicas = std::atoi(argv[i]);
      if (replicas < 1) replicas = 1;
    }
  }
  if (replicas < 0) replicas = smoke ? 1 : 3;
  return pinum::Run(replicas, smoke, json_path, min_speedup);
}
