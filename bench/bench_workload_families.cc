// Workload-family sweep: for every registered family (star, chain,
// skew, fact_pair) x seeds {1, 2}, measures generation, PINUM build +
// seal, and greedy-advisor time, and reports the corpus-relevant shape
// numbers (queries, candidates, plans cached/pruned, terms, postings,
// advisor picks). The per-commit trajectory of these rows is the perf
// backdrop behind the golden plan-stability corpus (tests/corpus/).
//
//   $ ./bench_workload_families [--json out.json]
#include <cstdio>
#include <cstring>
#include <string>

#include "advisor/greedy_advisor.h"
#include "bench_util.h"
#include "workload/workload_family.h"

namespace pinum {
namespace {

int Run(const std::string& json_path) {
  std::printf("# Workload-family sweep: build + seal + advise per family\n");
  std::printf("%-10s %-5s | %-4s %-5s %-6s | %-6s %-7s %-6s %-9s | %-9s "
              "%-9s %-9s | %-6s\n",
              "family", "seed", "qs", "cands", "joins", "plans", "pruned",
              "terms", "postings", "gen_ms", "build_ms", "advise_ms",
              "picks");

  bench::JsonSummary summary;
  for (const std::string& family : WorkloadFamilyNames()) {
    for (const uint64_t seed : {uint64_t{1}, uint64_t{2}}) {
      WorkloadFamilyOptions options;
      options.seed = seed;
      Stopwatch gen_sw;
      auto inst = MakeWorkloadInstance(family, options);
      if (!inst.ok()) {
        std::fprintf(stderr, "%s seed %llu: %s\n", family.c_str(),
                     static_cast<unsigned long long>(seed),
                     inst.status().ToString().c_str());
        return 1;
      }
      const double gen_ms = gen_sw.ElapsedMillis();

      WorkloadCacheOptions opts;
      WorkloadCacheBuilder builder(&(*inst)->catalog(), &(*inst)->set,
                                   &(*inst)->stats(), opts);
      Stopwatch build_sw;
      auto built = builder.BuildAll((*inst)->queries);
      if (!built.ok()) {
        std::fprintf(stderr, "%s seed %llu build: %s\n", family.c_str(),
                     static_cast<unsigned long long>(seed),
                     built.status().ToString().c_str());
        return 1;
      }
      const double build_ms = build_sw.ElapsedMillis();

      size_t joins = 0;
      for (const Query& q : (*inst)->queries) joins += q.joins.size();
      size_t plans = 0, pruned = 0, terms = 0, postings = 0;
      for (const SealedCache& sealed : built->sealed) {
        plans += sealed.NumPlans();
        pruned += sealed.NumPlansPruned();
        terms += sealed.NumTerms();
        postings += sealed.NumPostings();
      }

      AdvisorOptions aopts;
      Stopwatch advise_sw;
      const AdvisorResult advised =
          RunGreedyAdvisor(built->sealed, (*inst)->set, aopts);
      const double advise_ms = advise_sw.ElapsedMillis();

      std::printf("%-10s %-5llu | %-4zu %-5zu %-6zu | %-6zu %-7zu %-6zu "
                  "%-9zu | %-9.2f %-9.2f %-9.2f | %-6zu\n",
                  family.c_str(), static_cast<unsigned long long>(seed),
                  (*inst)->queries.size(),
                  (*inst)->set.candidate_ids.size(), joins, plans, pruned,
                  terms, postings, gen_ms, build_ms, advise_ms,
                  advised.chosen.size());

      const std::string tag =
          family + "_s" + std::to_string(seed) + "_";
      summary.Set(tag + "queries",
                  static_cast<int64_t>((*inst)->queries.size()));
      summary.Set(tag + "candidates",
                  static_cast<int64_t>((*inst)->set.candidate_ids.size()));
      summary.Set(tag + "plans", static_cast<int64_t>(plans));
      summary.Set(tag + "plans_pruned", static_cast<int64_t>(pruned));
      summary.Set(tag + "gen_ms", gen_ms);
      summary.Set(tag + "build_ms", build_ms);
      summary.Set(tag + "advise_ms", advise_ms);
      summary.Set(tag + "advisor_picks",
                  static_cast<int64_t>(advised.chosen.size()));
    }
  }
  if (!json_path.empty() && !summary.WriteTo(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_workload_families [--json out.json]\n");
      return 2;
    }
  }
  return pinum::Run(json_path);
}
