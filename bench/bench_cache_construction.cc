// Figure 4/5 — "Comparison of cache construction times".
//
// For each workload query Q1..Q10, measures the time to (a) fill the plan
// cache and (b) collect the per-candidate index access costs, for classic
// INUM (one optimizer call per IOC x {NLJ on, NLJ off}; one call per
// candidate index) and PINUM (one hooked call + two NLJ extremes; one
// keep-all-access-paths call).
//
// Paper claims: PINUM at least one order of magnitude faster for cache
// construction (two orders for queries joining >3 tables), ~5x faster for
// access-cost collection; tens of milliseconds vs seconds per query.
#include <cstdio>

#include "bench_util.h"
#include "inum/inum_builder.h"
#include "pinum/pinum_builder.h"

namespace pinum {
namespace {

int Run() {
  StarSchemaWorkload w = bench::MakePaperWorkload();
  CandidateSet set = bench::MakeCandidates(w);
  std::printf(
      "# Figure 4/5: cache construction times (ms), paper-scale stats\n");
  std::printf("# candidates searched: %zu\n", set.candidate_ids.size());
  std::printf(
      "%-5s %-7s %-6s | %-12s %-12s %-8s | %-12s %-12s %-8s | %-9s %-9s\n",
      "query", "tables", "IOCs", "INUM_plan", "PINUM_plan", "speedup",
      "INUM_acc", "PINUM_acc", "speedup", "INUM_call", "PINUM_call");

  double sum_plan_ratio = 0, sum_acc_ratio = 0;
  for (const Query& q : w.queries()) {
    InumBuildOptions iopts;
    InumBuildStats istats;
    auto classic = BuildInumCacheClassic(q, w.db().catalog(), set,
                                         w.db().stats(), iopts, &istats);
    if (!classic.ok()) {
      std::fprintf(stderr, "%s INUM: %s\n", q.name.c_str(),
                   classic.status().ToString().c_str());
      return 1;
    }
    PinumBuildOptions popts;
    PinumBuildStats pstats;
    auto pinum = BuildInumCachePinum(q, w.db().catalog(), set,
                                     w.db().stats(), popts, &pstats);
    if (!pinum.ok()) {
      std::fprintf(stderr, "%s PINUM: %s\n", q.name.c_str(),
                   pinum.status().ToString().c_str());
      return 1;
    }
    const double plan_ratio = istats.plan_cache_ms /
                              std::max(0.01, pstats.plan_cache_ms);
    const double acc_ratio = istats.access_cost_ms /
                             std::max(0.01, pstats.access_cost_ms);
    sum_plan_ratio += plan_ratio;
    sum_acc_ratio += acc_ratio;
    std::printf(
        "%-5s %-7zu %-6llu | %-12.1f %-12.1f %-8.1f | %-12.1f %-12.1f "
        "%-8.1f | %-9lld %-9lld\n",
        q.name.c_str(), q.tables.size(),
        static_cast<unsigned long long>(pstats.iocs_total),
        istats.plan_cache_ms, pstats.plan_cache_ms, plan_ratio,
        istats.access_cost_ms, pstats.access_cost_ms, acc_ratio,
        static_cast<long long>(istats.plan_cache_calls +
                               istats.access_cost_calls),
        static_cast<long long>(pstats.plan_cache_calls +
                               pstats.access_cost_calls));
  }
  std::printf("# mean plan-cache speedup: %.1fx   mean access speedup: %.1fx\n",
              sum_plan_ratio / 10, sum_acc_ratio / 10);
  std::printf(
      "# paper: >=10x plan cache (>=100x for >3-table joins), ~5x access\n");
  return 0;
}

}  // namespace
}  // namespace pinum

int main() { return pinum::Run(); }
