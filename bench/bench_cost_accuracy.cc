// Section VI-C — cost estimation accuracy of the cached model.
//
// For each query, draws random atomic configurations, compares the
// PINUM-cache-derived cost against a direct what-if optimizer call, and
// reports the relative error; the classic INUM cache is measured the same
// way as the baseline.
//
// Paper claims: PINUM — six of ten queries under 1% error, three around
// 4%, one around 9%; INUM baseline about 7% average error.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "inum/inum_builder.h"
#include "optimizer/optimizer.h"
#include "pinum/pinum_builder.h"

namespace pinum {
namespace {

struct ErrorStats {
  double sum = 0, max = 0;
  int n = 0;
  void Add(double e) {
    sum += e;
    max = std::max(max, e);
    ++n;
  }
  double avg() const { return n > 0 ? sum / n : 0; }
};

int Run(int configs_per_query) {
  StarSchemaWorkload w = bench::MakePaperWorkload();
  CandidateSet set = bench::MakeCandidates(w);

  std::printf("# Section VI-C: cost model accuracy over %d random atomic\n",
              configs_per_query);
  std::printf("# configurations per query (paper used 1000)\n");
  std::printf("%-5s %-10s %-10s | %-10s %-10s\n", "query", "PINUM_avg",
              "PINUM_max", "INUM_avg", "INUM_max");

  int under_1 = 0, around_4 = 0, above = 0;
  double pinum_total = 0, inum_total = 0;
  for (const Query& q : w.queries()) {
    PinumBuildOptions popts;
    auto pinum = BuildInumCachePinum(q, w.db().catalog(), set,
                                     w.db().stats(), popts, nullptr);
    InumBuildOptions iopts;
    auto inum = BuildInumCacheClassic(q, w.db().catalog(), set,
                                      w.db().stats(), iopts, nullptr);
    if (!pinum.ok() || !inum.ok()) {
      std::fprintf(stderr, "%s: build failed\n", q.name.c_str());
      return 1;
    }
    Rng rng(4242);
    ErrorStats pinum_err, inum_err;
    for (int t = 0; t < configs_per_query; ++t) {
      const IndexConfig config = bench::RandomAtomicConfig(q, set, &rng);
      Catalog sub = set.Subset(config);
      Optimizer opt(&sub, &w.db().stats());
      auto direct = opt.Optimize(q, PlannerKnobs{});
      if (!direct.ok()) continue;
      const double truth = direct->best->cost.total;
      pinum_err.Add(std::abs(pinum->Cost(config) - truth) / truth);
      inum_err.Add(std::abs(inum->Cost(config) - truth) / truth);
    }
    std::printf("%-5s %-10.3f %-10.3f | %-10.3f %-10.3f\n", q.name.c_str(),
                100 * pinum_err.avg(), 100 * pinum_err.max,
                100 * inum_err.avg(), 100 * inum_err.max);
    pinum_total += pinum_err.avg();
    inum_total += inum_err.avg();
    if (pinum_err.avg() < 0.01) {
      ++under_1;
    } else if (pinum_err.avg() < 0.06) {
      ++around_4;
    } else {
      ++above;
    }
  }
  std::printf(
      "# PINUM avg error %.3f%% across queries: %d under 1%%, %d in 1-6%%, "
      "%d above\n",
      100 * pinum_total / 10, under_1, around_4, above);
  std::printf("# INUM  avg error %.3f%%  (paper: ~7%% average)\n",
              100 * inum_total / 10);
  std::printf(
      "# paper (PINUM): 6 queries <1%%, 3 around 4%%, 1 around 9%%\n");
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  const int configs = argc > 1 ? std::atoi(argv[1]) : 200;
  return pinum::Run(configs);
}
