// Section IV — redundancy analysis of the classic INUM procedure.
//
// For each query: the number of interesting-order combinations (= classic
// INUM optimizer calls per NLJ variant), the number of useful plans PINUM
// exports after the Section V-D dominance pruning, and the implied
// redundancy (% of optimizer calls that return an already-known plan).
//
// Paper claims: TPC-H Q5 joins 6 tables with 648 IOCs but only 64 unique
// plans (90% of calls redundant); the star workload had 266 IOCs and 43
// useful plans across the queries the designer searched.
#include <cstdio>

#include "bench_util.h"
#include "optimizer/interesting_orders.h"
#include "pinum/pinum_builder.h"

namespace pinum {
namespace {

int Run() {
  StarSchemaWorkload w = bench::MakePaperWorkload();
  CandidateSet set = bench::MakeCandidates(w);
  std::printf("# Section IV: IOC redundancy analysis\n");
  std::printf("%-5s %-7s %-7s %-12s %-12s %-11s\n", "query", "tables",
              "IOCs", "usefulplans", "uniquesigs", "redundancy");
  uint64_t total_iocs = 0;
  size_t total_plans = 0;
  for (const Query& q : w.queries()) {
    PinumBuildOptions popts;
    PinumBuildStats pstats;
    auto cache = BuildInumCachePinum(q, w.db().catalog(), set,
                                     w.db().stats(), popts, &pstats);
    if (!cache.ok()) return 1;
    const double redundancy =
        100.0 * (1.0 - static_cast<double>(cache->NumPlans()) /
                           static_cast<double>(pstats.iocs_total));
    std::printf("%-5s %-7zu %-7llu %-12zu %-12zu %-10.1f%%\n",
                q.name.c_str(), q.tables.size(),
                static_cast<unsigned long long>(pstats.iocs_total),
                cache->NumPlans(), cache->NumUniqueSignatures(), redundancy);
    total_iocs += pstats.iocs_total;
    total_plans += cache->NumPlans();
  }
  std::printf("# workload total: %llu IOCs -> %zu useful plans "
              "(%.1f%% of classic INUM calls redundant)\n",
              static_cast<unsigned long long>(total_iocs), total_plans,
              100.0 * (1.0 - static_cast<double>(total_plans) /
                                 static_cast<double>(total_iocs)));
  std::printf("# paper: TPC-H Q5 648 IOCs -> 64 plans (90%%); workload "
              "266 IOCs -> 43 useful plans\n");
  return 0;
}

}  // namespace
}  // namespace pinum

int main() { return pinum::Run(); }
