// Serving throughput of the what-if arithmetic: naive InumCache::Cost
// (per-slot std::map probes over every cached plan) vs the sealed
// serving form (dominated plans pruned, shared terms, flat per-index
// vectors, internal-cost early exit), single-threaded and batched on a
// ThreadPool. This path answers every advisor evaluation — O(candidates
// x iterations x queries) calls — so its throughput is the system's
// serving throughput.
//
//   $ ./bench_serving_throughput [replicas] [--smoke] [--json out.json]
//
// --smoke shrinks the workload and trial counts for CI: it still
// exercises build -> seal -> serve end to end and fails (exit 1) if the
// sealed path disagrees with the naive path or fails to beat it.
// --json additionally writes the machine-readable summary CI records as
// an artifact (the BENCH_*.json perf trajectory).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advisor/greedy_advisor.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "inum/sealed_cache.h"
#include "workload/cache_manager.h"

namespace pinum {
namespace {

int Run(int replicas, bool smoke, const std::string& json_path) {
  auto setup = bench::MakeServingSetup(replicas);
  if (setup == nullptr) return 1;
  CandidateSet& set = setup->set;
  const std::vector<Query>& queries = setup->queries;
  WorkloadCacheBuilder& builder = *setup->builder;
  WorkloadCacheResult* built = &setup->built;
  std::printf("# serving throughput: %zu queries (%dx replication), "
              "%zu candidates\n",
              queries.size(), replicas, set.candidate_ids.size());
  const double pruned_pct =
      built->totals.plans_cached == 0
          ? 0.0
          : 100.0 * static_cast<double>(built->totals.plans_pruned) /
                static_cast<double>(built->totals.plans_cached);
  std::printf("# build %.1f ms (seal %.1f ms); %zu plans cached, "
              "%zu pruned as dominated (%.1f%%)\n",
              built->totals.wall_ms, built->totals.seal_ms,
              built->totals.plans_cached, built->totals.plans_pruned,
              pruned_pct);
  if (built->totals.plans_pruned == 0) {
    std::printf("#   (0 pruned = the builders' Section V-D export "
                "dominance already left the cache\n"
                "#   irredundant; sealing re-checks exactly and catches "
                "merged/hand-built caches)\n");
  }

  // The advisor's configuration mix: random atomic configurations plus
  // growing multi-index sets, fixed seed for comparability.
  Rng rng(2026);
  std::vector<IndexConfig> configs;
  const int num_configs = smoke ? 64 : 512;
  for (int i = 0; i < num_configs; ++i) {
    if (i % 2 == 0) {
      configs.push_back(bench::RandomAtomicConfig(
          queries[static_cast<size_t>(i) % queries.size()], set, &rng));
    } else {
      IndexConfig config;
      const size_t size = 1 + rng.Index(16);
      for (size_t k = 0; k < size; ++k) {
        config.push_back(
            set.candidate_ids[rng.Index(set.candidate_ids.size())]);
      }
      configs.push_back(std::move(config));
    }
  }

  // Sanity: the sealed form must price every benchmark configuration
  // bit-identically to the naive form (the property suite covers this
  // exhaustively; re-checking here keeps the bench honest).
  for (const IndexConfig& config : configs) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (built->sealed[qi].Cost(config) != built->caches[qi].Cost(config)) {
        std::fprintf(stderr, "FAIL: sealed cost diverges on query %zu\n", qi);
        return 1;
      }
    }
  }

  const int passes = smoke ? 3 : 20;
  const int64_t calls_per_pass =
      static_cast<int64_t>(configs.size()) *
      static_cast<int64_t>(queries.size());

  // Checksum accumulator defeating dead-code elimination.
  double sink = 0;

  auto measure = [&](auto&& one_pass) {
    Stopwatch timer;
    for (int p = 0; p < passes; ++p) sink += one_pass();
    const double secs = timer.ElapsedMillis() / 1000.0;
    return static_cast<double>(calls_per_pass) * passes /
           (secs > 0 ? secs : 1e-9);
  };

  const double naive_rate = measure([&] {
    double total = 0;
    for (const IndexConfig& config : configs) {
      for (const InumCache& cache : built->caches) {
        total += cache.Cost(config);
      }
    }
    return total;
  });

  const double sealed_rate = measure([&] {
    double total = 0;
    for (const IndexConfig& config : configs) {
      for (const SealedCache& cache : built->sealed) {
        total += cache.Cost(config);
      }
    }
    return total;
  });

  const WorkloadCostEvaluator evaluator(&built->sealed, builder.pool());
  const double batched_rate = measure([&] {
    double total = 0;
    for (double c : evaluator.BatchCost(configs)) total += c;
    return total;
  });

  std::printf("%-26s %14s %10s\n", "path", "cost-calls/s", "speedup");
  std::printf("%-26s %14.0f %9.2fx\n", "naive (map scans)", naive_rate, 1.0);
  std::printf("%-26s %14.0f %9.2fx\n", "sealed (flat vectors)",
              sealed_rate, sealed_rate / naive_rate);
  std::printf("%-26s %14.0f %9.2fx\n", "sealed + thread pool",
              batched_rate, batched_rate / naive_rate);
  std::printf("# plans pruned: %.1f%%; checksum %.3e\n", pruned_pct, sink);

  if (!json_path.empty()) {
    bench::JsonSummary summary;
    summary.Set("bench", std::string("serving_throughput"));
    summary.Set("replicas", static_cast<int64_t>(replicas));
    summary.Set("queries", static_cast<int64_t>(queries.size()));
    summary.Set("candidates",
                static_cast<int64_t>(set.candidate_ids.size()));
    summary.Set("configs", static_cast<int64_t>(configs.size()));
    summary.Set("plans_cached",
                static_cast<int64_t>(built->totals.plans_cached));
    summary.Set("plans_pruned_pct", pruned_pct);
    summary.Set("build_ms", built->totals.wall_ms);
    summary.Set("seal_ms", built->totals.seal_ms);
    summary.Set("naive_calls_per_s", naive_rate);
    summary.Set("sealed_calls_per_s", sealed_rate);
    summary.Set("batched_calls_per_s", batched_rate);
    summary.Set("sealed_speedup", sealed_rate / naive_rate);
    summary.Set("batched_speedup", batched_rate / naive_rate);
    if (!summary.WriteTo(json_path)) return 1;
  }

  if (sealed_rate <= naive_rate) {
    std::fprintf(stderr,
                 "FAIL: sealed serving is not faster than the naive scan\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  int replicas = -1;  // unspecified: 3x, or 1x under --smoke
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      replicas = std::atoi(argv[i]);
      if (replicas < 1) replicas = 1;
    }
  }
  if (replicas < 0) replicas = smoke ? 1 : 3;
  return pinum::Run(replicas, smoke, json_path);
}
