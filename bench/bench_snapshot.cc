// Snapshot restart cost: cold workload build (optimizer calls + seal)
// vs re-loading the sealed caches from a snapshot file two ways —
// decode-load (copy every arena onto the heap) and mmap-load (format
// v3 zero-copy: validate once, borrow the arenas straight from the
// mapped file) — the what-if service's restart paths (docs/
// SNAPSHOT_FORMAT.md). Both restored forms must price bit-identically
// to the freshly built caches (sampled configurations per query AND a
// full greedy-advisor run are compared field for field); the
// load-vs-build and mmap-vs-decode speedups are the point, and this
// harness doubles as the CI guard that restores never diverge.
//
//   $ ./bench_snapshot [replicas] [--smoke] [--json out.json]
//                      [--min-speedup X] [--min-mmap-speedup X]
//
// --smoke shrinks replication to 1x for CI/sanitizer runs but still
// exercises build -> save -> load -> map -> verify end to end, failing
// (exit 1) on any divergence or snapshot error. --min-speedup X
// additionally fails the run when snapshot-load is not at least X times
// faster than the cold build; --min-mmap-speedup X fails it when
// mmap-load is not at least X times faster than decode-load.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advisor/greedy_advisor.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "inum/snapshot.h"
#include "workload/cache_manager.h"

namespace pinum {
namespace {

int Run(int replicas, bool smoke, const std::string& json_path,
        double min_speedup, double min_mmap_speedup) {
  // Cold path: what every advisor session pays without persistence
  // (the shared serving preamble times the build).
  auto setup = bench::MakeServingSetup(replicas);
  if (setup == nullptr) return 1;
  CandidateSet& set = setup->set;
  const std::vector<Query>& queries = setup->queries;
  WorkloadCacheBuilder& builder = *setup->builder;
  WorkloadCacheResult* built = &setup->built;
  std::printf("# snapshot restart: %zu queries (%dx replication), "
              "%zu candidates\n",
              queries.size(), replicas, set.candidate_ids.size());
  const double build_ms = setup->build_ms;
  const int64_t optimizer_calls =
      built->totals.plan_cache_calls + built->totals.access_cost_calls;

  const std::string path = "bench_snapshot.tmp.snap";
  Stopwatch save_timer;
  Status saved = builder.SaveSnapshot(path, *built, queries);
  const double save_ms = save_timer.ElapsedMillis();
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  int64_t file_bytes = 0;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fseek(f, 0, SEEK_END);
    file_bytes = std::ftell(f);
    std::fclose(f);
  }

  // Warm path: the restart. Best of a few passes (load is deterministic).
  const int passes = smoke ? 2 : 5;
  double load_ms = 0;
  WorkloadSnapshot snapshot;
  for (int p = 0; p < passes; ++p) {
    Stopwatch load_timer;
    auto loaded = builder.LoadSnapshot(path);
    const double ms = load_timer.ElapsedMillis();
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      std::remove(path.c_str());
      return 1;
    }
    snapshot = std::move(*loaded);
    if (p == 0 || ms < load_ms) load_ms = ms;
  }

  // Zero-copy path: same file, mapped instead of decoded. The second
  // and later passes are pure page-cache hits — exactly the always-on
  // restart this path exists for.
  double map_ms = 0;
  WorkloadCacheResult mapped;
  for (int p = 0; p < passes; ++p) {
    Stopwatch map_timer;
    auto m = builder.LoadSnapshotMapped(path);
    const double ms = map_timer.ElapsedMillis();
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      std::remove(path.c_str());
      return 1;
    }
    mapped = std::move(*m);
    if (p == 0 || ms < map_ms) map_ms = ms;
  }
  // Unlinked before any cost is asked: the mapping (not the directory
  // entry) is what keeps the arenas alive.
  std::remove(path.c_str());

  // Identity guard 1: sampled configurations per query, bitwise.
  Rng rng(331);
  const int trials = smoke ? 10 : 40;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (int t = 0; t < trials; ++t) {
      const IndexConfig config =
          bench::RandomAtomicConfig(queries[qi], set, &rng);
      const double fresh = built->sealed[qi].Cost(config);
      const double restored = snapshot.sealed[qi].Cost(config);
      const double mmapped = mapped.sealed[qi].Cost(config);
      // Bitwise identity; +inf == +inf, so the sentinel needs no case.
      if (fresh != restored || fresh != mmapped) {
        std::fprintf(stderr,
                     "FAIL: restored cost diverges on query %zu trial %d: "
                     "%.17g vs %.17g (decode) vs %.17g (mmap)\n",
                     qi, t, fresh, restored, mmapped);
        return 1;
      }
    }
  }

  // Identity guard 2: the full greedy advisor, field for field.
  AdvisorOptions aopts;
  const AdvisorResult fresh = RunGreedyAdvisor(built->sealed, set, aopts);
  const AdvisorResult restored =
      RunGreedyAdvisor(snapshot.sealed, set, aopts);
  if (fresh.chosen != restored.chosen ||
      fresh.workload_cost_before != restored.workload_cost_before ||
      fresh.workload_cost_after != restored.workload_cost_after ||
      fresh.total_size_bytes != restored.total_size_bytes ||
      fresh.evaluations != restored.evaluations) {
    std::fprintf(stderr,
                 "FAIL: advisor output from restored caches diverges\n");
    return 1;
  }
  const AdvisorResult from_mapped =
      RunGreedyAdvisor(mapped.sealed, set, aopts);
  if (fresh.chosen != from_mapped.chosen ||
      fresh.workload_cost_before != from_mapped.workload_cost_before ||
      fresh.workload_cost_after != from_mapped.workload_cost_after ||
      fresh.total_size_bytes != from_mapped.total_size_bytes ||
      fresh.evaluations != from_mapped.evaluations) {
    std::fprintf(stderr,
                 "FAIL: advisor output from mapped caches diverges\n");
    return 1;
  }

  const double speedup = build_ms / (load_ms > 0 ? load_ms : 1e-9);
  const double mmap_speedup = load_ms / (map_ms > 0 ? map_ms : 1e-9);
  std::printf("# snapshot file: %lld bytes for %zu sealed caches "
              "(%zu plans, %zu terms, %zu postings)\n",
              static_cast<long long>(file_bytes), snapshot.sealed.size(),
              built->totals.plans_cached - built->totals.plans_pruned,
              built->totals.terms, built->totals.postings);
  std::printf("%-28s %12s %16s\n", "path", "wall-ms", "optimizer-calls");
  std::printf("%-28s %12.1f %16lld\n", "cold build (PINUM + seal)",
              build_ms, static_cast<long long>(optimizer_calls));
  std::printf("%-28s %12.1f %16d\n", "snapshot save", save_ms, 0);
  std::printf("%-28s %12.2f %16d   (%.0fx faster than building)\n",
              "snapshot load (decode)", load_ms, 0, speedup);
  std::printf("%-28s %12.2f %16d   (%.1fx faster than decoding)\n",
              "snapshot load (mmap)", map_ms, 0, mmap_speedup);

  if (!json_path.empty()) {
    bench::JsonSummary summary;
    summary.Set("bench", std::string("snapshot"));
    summary.Set("replicas", static_cast<int64_t>(replicas));
    summary.Set("queries", static_cast<int64_t>(queries.size()));
    summary.Set("candidates", static_cast<int64_t>(set.candidate_ids.size()));
    summary.Set("snapshot_bytes", file_bytes);
    summary.Set("cold_build_ms", build_ms);
    summary.Set("optimizer_calls", optimizer_calls);
    summary.Set("snapshot_save_ms", save_ms);
    summary.Set("snapshot_load_ms", load_ms);
    summary.Set("snapshot_mmap_ms", map_ms);
    summary.Set("load_speedup", speedup);
    summary.Set("mmap_speedup", mmap_speedup);
    summary.Set("min_speedup", min_speedup);
    summary.Set("min_mmap_speedup", min_mmap_speedup);
    summary.Set("chosen_indexes", static_cast<int64_t>(restored.chosen.size()));
    summary.Set("workload_cost_after", restored.workload_cost_after);
    if (!summary.WriteTo(json_path)) return 1;
  }

  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: snapshot load speedup %.1fx below the %.1fx floor\n",
                 speedup, min_speedup);
    return 1;
  }
  if (min_mmap_speedup > 0 && mmap_speedup < min_mmap_speedup) {
    std::fprintf(stderr,
                 "FAIL: mmap-vs-decode speedup %.1fx below the %.1fx floor\n",
                 mmap_speedup, min_mmap_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  int replicas = -1;  // unspecified: 3x, or 1x under --smoke
  bool smoke = false;
  std::string json_path;
  double min_speedup = 0;
  double min_mmap_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-mmap-speedup") == 0 &&
               i + 1 < argc) {
      min_mmap_speedup = std::atof(argv[++i]);
    } else {
      replicas = std::atoi(argv[i]);
      if (replicas < 1) replicas = 1;
    }
  }
  if (replicas < 0) replicas = smoke ? 1 : 3;
  return pinum::Run(replicas, smoke, json_path, min_speedup,
                    min_mmap_speedup);
}
