// Shared setup for the experiment harnesses: the paper-scale workload,
// candidate sets, random atomic configurations, and the machine-readable
// summary every bench can emit (--json out.json) so perf trajectories
// can be recorded per commit instead of scraped from stdout.
#ifndef PINUM_BENCH_BENCH_UTIL_H_
#define PINUM_BENCH_BENCH_UTIL_H_

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "advisor/candidate_generator.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "inum/access_cost_table.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"
#include "workload/star_schema.h"

namespace pinum {
namespace bench {

/// A flat JSON object of bench results, written in insertion order.
/// Numbers render with full round-trip precision ("%.17g"); non-finite
/// doubles render as strings ("inf"/"-inf"/"nan") since JSON has no
/// literal for them. Keys are emitted as-is (the benches use plain
/// identifiers); string values get minimal escaping.
class JsonSummary {
 public:
  void Set(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      entries_.emplace_back(
          key, std::string("\"") +
                   (std::isnan(value) ? "nan" : value > 0 ? "inf" : "-inf") +
                   "\"");
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    entries_.emplace_back(key, buf);
  }

  void Set(const std::string& key, int64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    entries_.emplace_back(key, buf);
  }

  void Set(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    entries_.emplace_back(key, std::move(quoted));
  }

  /// Writes the object to `path`; returns false (with a message on
  /// stderr) when the file cannot be written.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write JSON summary to %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", entries_[i].first.c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Paper-scale workload (10 GB-equivalent statistics, no data).
inline StarSchemaWorkload MakePaperWorkload() {
  StarSchemaSpec spec;
  auto w = StarSchemaWorkload::Create(spec);
  if (!w.ok()) {
    std::fprintf(stderr, "workload: %s\n", w.status().ToString().c_str());
    std::abort();
  }
  return std::move(*w);
}

/// Candidate universe for the whole workload (the paper's experiment
/// searches 1093 candidates; the count depends on the query generator's
/// seed and is reported by the harness).
inline CandidateSet MakeCandidates(const StarSchemaWorkload& w) {
  CandidateOptions copt;
  auto cands = GenerateCandidates(w.queries(), w.db().catalog(),
                                  w.db().stats(), copt);
  auto set = MakeCandidateSet(w.db().catalog(), cands);
  if (!set.ok()) {
    std::fprintf(stderr, "candidates: %s\n",
                 set.status().ToString().c_str());
    std::abort();
  }
  return std::move(*set);
}

/// Replicates a workload `times`-fold (renamed clones), modeling a
/// production workload where the same query templates recur — the regime
/// in which cross-query access-cost sharing pays off.
inline std::vector<Query> ReplicateQueries(const std::vector<Query>& queries,
                                           int times) {
  std::vector<Query> out;
  out.reserve(queries.size() * static_cast<size_t>(times));
  for (int r = 0; r < times; ++r) {
    for (const Query& q : queries) {
      Query clone = q;
      if (r > 0) clone.name += "_r" + std::to_string(r);
      out.push_back(std::move(clone));
    }
  }
  return out;
}

/// The serving benches' common preamble — paper workload, candidate
/// universe, `replicas`-fold replicated queries, and one timed build
/// through a WorkloadCacheBuilder — previously hand-rolled per bench.
/// Heap-allocated so the builder's pointers into workload/set stay
/// stable for the setup's lifetime.
struct ServingSetup {
  StarSchemaWorkload workload;
  CandidateSet set;
  std::vector<Query> queries;
  std::unique_ptr<WorkloadCacheBuilder> builder;
  WorkloadCacheResult built;
  /// Wall time of the cold BuildAll (what a restart would re-pay).
  double build_ms = 0;
};

/// Builds the full serving preamble; nullptr (with the error on stderr)
/// when the build fails.
inline std::unique_ptr<ServingSetup> MakeServingSetup(
    int replicas, WorkloadCacheOptions opts = {}) {
  auto setup = std::unique_ptr<ServingSetup>(new ServingSetup{
      MakePaperWorkload(), CandidateSet{}, {}, nullptr, {}, 0});
  setup->set = MakeCandidates(setup->workload);
  setup->queries = ReplicateQueries(setup->workload.queries(), replicas);
  setup->builder = std::make_unique<WorkloadCacheBuilder>(
      &setup->workload.db().catalog(), &setup->set,
      &setup->workload.db().stats(), opts);
  Stopwatch build_timer;
  auto built = setup->builder->BuildAll(setup->queries);
  setup->build_ms = build_timer.ElapsedMillis();
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return nullptr;
  }
  setup->built = std::move(*built);
  return setup;
}

/// Random atomic configuration over the candidates relevant to `q`
/// (at most one index per table, each table filled with prob. `p_fill`).
inline IndexConfig RandomAtomicConfig(const Query& q, const CandidateSet& set,
                                      Rng* rng, double p_fill = 0.6) {
  std::map<TableId, std::vector<IndexId>> per_table;
  for (IndexId id : set.candidate_ids) {
    const IndexDef* def = set.universe.FindIndex(id);
    if (q.PosOfTable(def->table) >= 0) per_table[def->table].push_back(id);
  }
  IndexConfig config;
  for (auto& [table, ids] : per_table) {
    (void)table;
    if (rng->Chance(p_fill)) config.push_back(ids[rng->Index(ids.size())]);
  }
  return config;
}

}  // namespace bench
}  // namespace pinum

#endif  // PINUM_BENCH_BENCH_UTIL_H_
