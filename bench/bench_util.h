// Shared setup for the experiment harnesses: the paper-scale workload,
// candidate sets, and random atomic configurations.
#ifndef PINUM_BENCH_BENCH_UTIL_H_
#define PINUM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <vector>

#include "advisor/candidate_generator.h"
#include "common/rng.h"
#include "inum/access_cost_table.h"
#include "whatif/candidate_set.h"
#include "workload/star_schema.h"

namespace pinum {
namespace bench {

/// Paper-scale workload (10 GB-equivalent statistics, no data).
inline StarSchemaWorkload MakePaperWorkload() {
  StarSchemaSpec spec;
  auto w = StarSchemaWorkload::Create(spec);
  if (!w.ok()) {
    std::fprintf(stderr, "workload: %s\n", w.status().ToString().c_str());
    std::abort();
  }
  return std::move(*w);
}

/// Candidate universe for the whole workload (the paper's experiment
/// searches 1093 candidates; the count depends on the query generator's
/// seed and is reported by the harness).
inline CandidateSet MakeCandidates(const StarSchemaWorkload& w) {
  CandidateOptions copt;
  auto cands = GenerateCandidates(w.queries(), w.db().catalog(),
                                  w.db().stats(), copt);
  auto set = MakeCandidateSet(w.db().catalog(), cands);
  if (!set.ok()) {
    std::fprintf(stderr, "candidates: %s\n",
                 set.status().ToString().c_str());
    std::abort();
  }
  return std::move(*set);
}

/// Replicates a workload `times`-fold (renamed clones), modeling a
/// production workload where the same query templates recur — the regime
/// in which cross-query access-cost sharing pays off.
inline std::vector<Query> ReplicateQueries(const std::vector<Query>& queries,
                                           int times) {
  std::vector<Query> out;
  out.reserve(queries.size() * static_cast<size_t>(times));
  for (int r = 0; r < times; ++r) {
    for (const Query& q : queries) {
      Query clone = q;
      if (r > 0) clone.name += "_r" + std::to_string(r);
      out.push_back(std::move(clone));
    }
  }
  return out;
}

/// Random atomic configuration over the candidates relevant to `q`
/// (at most one index per table, each table filled with prob. `p_fill`).
inline IndexConfig RandomAtomicConfig(const Query& q, const CandidateSet& set,
                                      Rng* rng, double p_fill = 0.6) {
  std::map<TableId, std::vector<IndexId>> per_table;
  for (IndexId id : set.candidate_ids) {
    const IndexDef* def = set.universe.FindIndex(id);
    if (q.PosOfTable(def->table) >= 0) per_table[def->table].push_back(id);
  }
  IndexConfig config;
  for (auto& [table, ids] : per_table) {
    (void)table;
    if (rng->Chance(p_fill)) config.push_back(ids[rng->Index(ids.size())]);
  }
  return config;
}

}  // namespace bench
}  // namespace pinum

#endif  // PINUM_BENCH_BENCH_UTIL_H_
