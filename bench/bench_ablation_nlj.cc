// Ablation A2 — nested-loop-join plan caching strategies (Section V-D's
// accuracy / cache-size trade-off).
//
// Varies how NLJ plans enter the cache: none (0 extra calls), one or two
// extreme-access-cost calls caching only the winner (the paper's
// approach), and full per-IOC export from the extreme calls
// (nlj_export_all). Reports cache size, build time, and cost-model error
// against direct optimizer calls.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "optimizer/optimizer.h"
#include "pinum/pinum_builder.h"

namespace pinum {
namespace {

struct Variant {
  const char* name;
  int extreme_calls;
  bool export_all;
};

int Run(int configs_per_query) {
  StarSchemaWorkload w = bench::MakePaperWorkload();
  CandidateSet set = bench::MakeCandidates(w);
  const Variant variants[] = {
      {"no_nlj", 0, false},
      {"one_extreme", 1, false},
      {"two_extremes", 2, false},
      {"plus_probe", 3, false},
      {"export_all", 3, true},
  };
  std::printf("# Ablation A2: NLJ caching strategy vs accuracy "
              "(%d configs/query, queries Q1..Q6)\n",
              configs_per_query);
  std::printf("%-13s %-8s %-10s %-12s %-10s\n", "variant", "plans",
              "build_ms", "avg_err%%", "max_err%%");
  for (const Variant& v : variants) {
    size_t plans = 0;
    double build_ms = 0, sum_err = 0, max_err = 0;
    int n = 0;
    // Q7..Q10 make export_all expensive; the trade-off shows on Q1..Q6.
    for (size_t qi = 0; qi < 6; ++qi) {
      const Query& q = w.queries()[qi];
      PinumBuildOptions opts;
      opts.nlj_extreme_calls = v.extreme_calls;
      opts.nlj_export_all = v.export_all;
      PinumBuildStats stats;
      auto cache = BuildInumCachePinum(q, w.db().catalog(), set,
                                       w.db().stats(), opts, &stats);
      if (!cache.ok()) return 1;
      plans += cache->NumPlans();
      build_ms += stats.plan_cache_ms + stats.access_cost_ms;
      Rng rng(777);
      for (int t = 0; t < configs_per_query; ++t) {
        const IndexConfig config = bench::RandomAtomicConfig(q, set, &rng);
        Catalog sub = set.Subset(config);
        Optimizer opt(&sub, &w.db().stats());
        auto direct = opt.Optimize(q, PlannerKnobs{});
        if (!direct.ok()) continue;
        const double truth = direct->best->cost.total;
        const double err = std::abs(cache->Cost(config) - truth) / truth;
        sum_err += err;
        max_err = std::max(max_err, err);
        ++n;
      }
    }
    std::printf("%-13s %-8zu %-10.1f %-12.3f %-10.3f\n", v.name, plans,
                build_ms, 100 * sum_err / std::max(1, n), 100 * max_err);
  }
  std::printf("# paper: two extreme calls typically suffice; pruning by\n"
              "# access-cost range gives higher accuracy at the cost of a\n"
              "# bigger plan cache and slower lookup\n");
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  const int configs = argc > 1 ? std::atoi(argv[1]) : 100;
  return pinum::Run(configs);
}
