// Workload-scale cache construction: serial vs parallel build throughput
// and cross-query access-cost sharing, over the paper workload replicated
// R-fold (recurring query templates).
//
// Reports, for PINUM (and classic INUM with --classic):
//   - serial build wall time (1 thread, no sharing) — the per-query loop
//     every caller would otherwise write;
//   - serial build with the shared access-cost store — same wall clock
//     class, fewer optimizer calls;
//   - parallel build with sharing (one thread per core) — the speedup
//     column needs >= 8 hardware threads to show its full spread.
//
//   $ ./bench_workload_scale [replicas] [--classic]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "workload/cache_manager.h"

namespace pinum {
namespace {

struct RunResult {
  double wall_ms = 0;
  int64_t plan_calls = 0;
  int64_t access_calls = 0;
  int64_t saved = 0;
};

RunResult RunBuild(const StarSchemaWorkload& w, const CandidateSet& set,
                   const std::vector<Query>& queries, CacheBuildMode mode,
                   int threads, bool share) {
  WorkloadCacheOptions opts;
  opts.mode = mode;
  opts.num_threads = threads;
  opts.share_access_costs = share;
  WorkloadCacheBuilder builder(&w.db().catalog(), &set, &w.db().stats(),
                               opts);
  auto result = builder.BuildAll(queries);
  if (!result.ok()) {
    std::fprintf(stderr, "build: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return {result->totals.wall_ms, result->totals.plan_cache_calls,
          result->totals.access_cost_calls, result->totals.access_calls_saved};
}

void Report(const char* label, const RunResult& r, double baseline_ms) {
  std::printf("%-26s %10.1f ms %8.2fx | plan calls %6lld | access calls "
              "%6lld (saved %lld)\n",
              label, r.wall_ms, baseline_ms / r.wall_ms,
              static_cast<long long>(r.plan_calls),
              static_cast<long long>(r.access_calls),
              static_cast<long long>(r.saved));
}

int Run(int replicas, bool include_classic) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  StarSchemaWorkload w = bench::MakePaperWorkload();
  CandidateSet set = bench::MakeCandidates(w);
  const std::vector<Query> queries =
      bench::ReplicateQueries(w.queries(), replicas);

  std::printf("# workload-scale cache construction\n");
  std::printf("# %zu queries (%zu templates x %d), %zu candidates, "
              "%d hardware threads\n\n",
              queries.size(), w.queries().size(), replicas,
              set.candidate_ids.size(), hw);

  std::printf("== PINUM ==\n");
  const RunResult serial =
      RunBuild(w, set, queries, CacheBuildMode::kPinum, 1, false);
  Report("serial, no sharing", serial, serial.wall_ms);
  Report("serial, shared access",
         RunBuild(w, set, queries, CacheBuildMode::kPinum, 1, true),
         serial.wall_ms);
  Report("parallel, shared access",
         RunBuild(w, set, queries, CacheBuildMode::kPinum, 0, true),
         serial.wall_ms);

  if (include_classic) {
    std::printf("\n== classic INUM ==\n");
    const RunResult cserial =
        RunBuild(w, set, queries, CacheBuildMode::kClassic, 1, false);
    Report("serial, no sharing", cserial, cserial.wall_ms);
    Report("serial, shared access",
           RunBuild(w, set, queries, CacheBuildMode::kClassic, 1, true),
           cserial.wall_ms);
    Report("parallel, shared access",
           RunBuild(w, set, queries, CacheBuildMode::kClassic, 0, true),
           cserial.wall_ms);
  }
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  int replicas = 4;
  bool classic = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--classic") == 0) {
      classic = true;
    } else {
      replicas = std::atoi(argv[i]);
      if (replicas < 1) replicas = 1;
    }
  }
  return pinum::Run(replicas, classic);
}
