// Search-advisor quality at equal wall-clock: on each workload family,
// time the greedy baseline, then give RunSearchAdvisor exactly that
// much wall-clock (time_budget_ms = greedy's measured wall) and compare
// configuration quality. Because restart 0 *is* greedy and always
// completes, quality_ratio = greedy_cost_after / search_cost_after is
// >= 1.0 by construction; the interesting output is how far above 1.0
// the randomized restarts and swap moves get within greedy's own
// budget, and whether the full (untimed) search finds more. A repeated
// untimed run double-checks the determinism contract end to end.
//
//   $ ./bench_advisor_search [--smoke] [--json out.json]
//                            [--min-quality-ratio X]
//
// --smoke shrinks the workloads for CI/sanitizer runs; it still
// exercises build -> seal -> greedy -> search end to end and fails
// (exit 1) on a determinism divergence or a quality ratio below the
// floor. --min-quality-ratio X fails the run when any family's
// equal-wall-clock ratio drops below X (CI pins 1.0: search must never
// lose to greedy).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "advisor/search_advisor.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "workload/cache_manager.h"
#include "workload/workload_family.h"

namespace pinum {
namespace {

/// Everything under the determinism contract (wall_ms excluded).
bool SameSearch(const SearchResult& a, const SearchResult& b,
                std::string* why) {
  auto fail = [&](const char* reason) {
    *why = reason;
    return false;
  };
  if (a.chosen != b.chosen) return fail("chosen index sets differ");
  if (a.workload_cost_after != b.workload_cost_after) {
    return fail("final costs differ");
  }
  if (a.greedy_cost_after != b.greedy_cost_after) {
    return fail("greedy baselines differ");
  }
  if (a.evaluations != b.evaluations ||
      a.full_evaluations != b.full_evaluations) {
    return fail("evaluation counters differ");
  }
  if (a.restarts.size() != b.restarts.size() ||
      a.swaps.size() != b.swaps.size() ||
      a.swaps_accepted != b.swaps_accepted) {
    return fail("trajectories differ");
  }
  for (size_t i = 0; i < a.restarts.size(); ++i) {
    if (a.restarts[i].cost_after != b.restarts[i].cost_after ||
        a.restarts[i].prefix_size != b.restarts[i].prefix_size) {
      return fail("restart trajectories differ");
    }
  }
  return true;
}

struct FamilyRow {
  std::string family;
  double greedy_ms = 0;
  double greedy_cost = 0;
  double equal_cost = 0;       // search at time_budget_ms = greedy_ms
  double equal_ratio = 1.0;    // greedy_cost / equal_cost
  double full_cost = 0;        // untimed search
  double full_ratio = 1.0;
  double full_ms = 0;
  int64_t swaps_accepted = 0;
  int64_t pruned = 0;
  int64_t restarts_completed = 0;
};

int Run(bool smoke, const std::string& json_path, double min_quality) {
  const std::vector<std::string> families = {"chain", "fact_pair"};
  ThreadPool pool;
  std::vector<FamilyRow> rows;

  for (const std::string& family : families) {
    WorkloadFamilyOptions wopts;
    if (smoke) wopts.num_queries = 6;
    auto inst = MakeWorkloadInstance(family, wopts);
    if (!inst.ok()) {
      std::fprintf(stderr, "%s\n", inst.status().ToString().c_str());
      return 1;
    }
    WorkloadCacheOptions copts;
    WorkloadCacheBuilder builder(&(*inst)->catalog(), &(*inst)->set,
                                 &(*inst)->stats(), copts);
    auto built = builder.BuildAll((*inst)->queries);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    const WorkloadCostEvaluator evaluator(&built->sealed, &pool);

    FamilyRow row;
    row.family = family;

    // Greedy baseline wall-clock: best of a few passes, like the scale
    // bench — the search's equal-wall-clock budget should not inherit
    // one noisy outlier run.
    AdvisorOptions aopts;
    AdvisorResult greedy;
    row.greedy_ms = 1e300;
    for (int p = 0; p < (smoke ? 2 : 5); ++p) {
      Stopwatch timer;
      greedy = RunGreedyAdvisor(evaluator, (*inst)->set, aopts);
      row.greedy_ms = std::min(row.greedy_ms, timer.ElapsedMillis());
    }
    row.greedy_cost = greedy.workload_cost_after;

    // Equal wall-clock: the search gets exactly what greedy spent.
    // Restart 0 always completes, so the ratio is >= 1.0 even when the
    // deadline fires immediately.
    SearchOptions equal_opts;
    equal_opts.base = aopts;
    equal_opts.time_budget_ms = row.greedy_ms;
    const SearchResult equal =
        RunSearchAdvisor(evaluator, (*inst)->set, equal_opts);
    row.equal_cost = equal.workload_cost_after;
    row.equal_ratio =
        row.equal_cost > 0 ? row.greedy_cost / row.equal_cost : 1.0;

    // Full anytime horizon: untimed, and therefore deterministic — run
    // twice and require identical bits.
    SearchOptions full_opts;
    full_opts.base = aopts;
    Stopwatch full_timer;
    const SearchResult full =
        RunSearchAdvisor(evaluator, (*inst)->set, full_opts);
    row.full_ms = full_timer.ElapsedMillis();
    const SearchResult again =
        RunSearchAdvisor(evaluator, (*inst)->set, full_opts);
    std::string why;
    if (!SameSearch(full, again, &why)) {
      std::fprintf(stderr, "FAIL: %s search not deterministic: %s\n",
                   family.c_str(), why.c_str());
      return 1;
    }
    if (full.greedy_cost_after != greedy.workload_cost_after) {
      std::fprintf(stderr,
                   "FAIL: %s restart 0 diverges from RunGreedyAdvisor\n",
                   family.c_str());
      return 1;
    }
    row.full_cost = full.workload_cost_after;
    row.full_ratio =
        row.full_cost > 0 ? row.greedy_cost / row.full_cost : 1.0;
    row.swaps_accepted = full.swaps_accepted;
    row.pruned = full.swap_candidates_pruned;
    row.restarts_completed = full.restarts_completed;
    rows.push_back(row);
  }

  std::printf("# advisor search quality vs greedy at equal wall-clock\n");
  std::printf("%-12s %10s %12s %12s %8s %12s %8s %6s\n", "family",
              "greedy-ms", "greedy-cost", "equal-cost", "ratio",
              "full-cost", "ratio", "swaps");
  bool below_floor = false;
  for (const FamilyRow& row : rows) {
    std::printf("%-12s %10.1f %12.6g %12.6g %8.4f %12.6g %8.4f %6lld\n",
                row.family.c_str(), row.greedy_ms, row.greedy_cost,
                row.equal_cost, row.equal_ratio, row.full_cost,
                row.full_ratio, static_cast<long long>(row.swaps_accepted));
    if (min_quality > 0 && row.equal_ratio < min_quality) {
      below_floor = true;
    }
  }

  if (!json_path.empty()) {
    bench::JsonSummary summary;
    summary.Set("bench", std::string("advisor_search"));
    summary.Set("min_quality_ratio", min_quality);
    for (const FamilyRow& row : rows) {
      const std::string p = row.family + ".";
      summary.Set(p + "greedy_ms", row.greedy_ms);
      summary.Set(p + "greedy_cost", row.greedy_cost);
      summary.Set(p + "equal_wallclock_cost", row.equal_cost);
      summary.Set(p + "equal_wallclock_ratio", row.equal_ratio);
      summary.Set(p + "full_cost", row.full_cost);
      summary.Set(p + "full_ratio", row.full_ratio);
      summary.Set(p + "full_ms", row.full_ms);
      summary.Set(p + "swaps_accepted", row.swaps_accepted);
      summary.Set(p + "swap_candidates_pruned", row.pruned);
      summary.Set(p + "restarts_completed", row.restarts_completed);
    }
    if (!summary.WriteTo(json_path)) return 1;
  }

  if (below_floor) {
    std::fprintf(stderr,
                 "FAIL: equal-wall-clock quality ratio below the %.2f "
                 "floor\n",
                 min_quality);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  double min_quality = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-quality-ratio") == 0 &&
               i + 1 < argc) {
      min_quality = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  return pinum::Run(smoke, json_path, min_quality);
}
