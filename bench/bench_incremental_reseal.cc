// Incremental reseal vs cold rebuild: after statistics drift for k of N
// queries, RebuildQueries re-pays only the stale queries' optimizer
// calls while a restart without incremental reseal re-pays all N. The
// k-of-N speedup is the point; the harness doubles as the CI guard that
// incremental serving state never diverges — sampled configuration
// costs and a full greedy-advisor run must be bit-identical to a cold
// BuildAll under the drifted world (the bench-side mirror of
// tests/incremental_reseal_test.cc).
//
//   $ ./bench_incremental_reseal [replicas] [--smoke] [--json out.json]
//                                [--min-speedup X] [--seed S]
//
// --smoke shrinks replication to 1x for CI/sanitizer runs but still
// exercises build -> drift -> reseal -> verify end to end, failing
// (exit 1) on any divergence. --min-speedup X additionally fails the
// run when the incremental reseal is not at least X times faster than
// the cold rebuild. The drift is seeded (--seed, default 1) through
// src/workload/drift.h and targets the smallest stale set the workload
// topology allows (k=1 query template before replication).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advisor/greedy_advisor.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "workload/cache_manager.h"
#include "workload/drift.h"

namespace pinum {
namespace {

int Run(int replicas, bool smoke, const std::string& json_path,
        double min_speedup, uint64_t seed) {
  auto setup = bench::MakeServingSetup(replicas);
  if (setup == nullptr) return 1;
  const std::vector<Query>& queries = setup->queries;
  const size_t n = queries.size();
  std::printf("# incremental reseal: %zu queries (%dx replication), "
              "%zu candidates, drift seed %llu\n",
              n, replicas, setup->set.candidate_ids.size(),
              static_cast<unsigned long long>(seed));
  const int64_t cold_calls = setup->built.totals.plan_cache_calls +
                             setup->built.totals.access_cost_calls;

  // Seeded drift targeting the smallest stale set the topology allows
  // (one query template; replication multiplies it by R).
  auto drift = ApplyDrift(queries, &setup->set,
                          &setup->workload.db().stats(), 1, seed);
  if (!drift.ok()) {
    std::fprintf(stderr, "%s\n", drift.status().ToString().c_str());
    return 1;
  }
  const size_t k = drift->stale_queries.size();
  if (k == 0 || k >= n) {
    std::fprintf(stderr, "FAIL: drift staled %zu of %zu queries — no "
                 "incremental win to measure\n", k, n);
    return 1;
  }

  // Incremental path: reseal exactly the stale queries in place.
  WorkloadCacheStats reseal_totals;
  Stopwatch reseal_timer;
  Status resealed = setup->builder->RebuildQueries(
      drift->stale_queries, queries, &setup->built, &reseal_totals);
  const double reseal_ms = reseal_timer.ElapsedMillis();
  if (!resealed.ok()) {
    std::fprintf(stderr, "%s\n", resealed.ToString().c_str());
    return 1;
  }
  const int64_t reseal_calls =
      reseal_totals.plan_cache_calls + reseal_totals.access_cost_calls;

  // Cold path: what a drift costs without incremental reseal — a fresh
  // builder re-paying every query's optimizer calls.
  WorkloadCacheBuilder cold_builder(&setup->workload.db().catalog(),
                                    &setup->set,
                                    &setup->workload.db().stats());
  Stopwatch cold_timer;
  auto cold = cold_builder.BuildAll(queries);
  const double cold_ms = cold_timer.ElapsedMillis();
  if (!cold.ok()) {
    std::fprintf(stderr, "%s\n", cold.status().ToString().c_str());
    return 1;
  }
  const int64_t cold_rebuild_calls =
      cold->totals.plan_cache_calls + cold->totals.access_cost_calls;

  // Identity guard 1: sampled configurations, bitwise, per query.
  Rng rng(433);
  const int trials = smoke ? 10 : 40;
  for (size_t qi = 0; qi < n; ++qi) {
    for (int t = 0; t < trials; ++t) {
      const IndexConfig config =
          bench::RandomAtomicConfig(queries[qi], setup->set, &rng);
      const double incremental = setup->built.sealed[qi].Cost(config);
      const double from_cold = cold->sealed[qi].Cost(config);
      if (incremental != from_cold) {
        std::fprintf(stderr,
                     "FAIL: incremental cost diverges on query %zu trial %d:"
                     " %.17g vs %.17g (seed %llu)\n",
                     qi, t, incremental, from_cold,
                     static_cast<unsigned long long>(seed));
        return 1;
      }
    }
  }

  // Identity guard 2: the full greedy advisor, field for field.
  AdvisorOptions aopts;
  const AdvisorResult incremental_advice =
      RunGreedyAdvisor(setup->built.sealed, setup->set, aopts);
  const AdvisorResult cold_advice =
      RunGreedyAdvisor(cold->sealed, setup->set, aopts);
  if (incremental_advice.chosen != cold_advice.chosen ||
      incremental_advice.workload_cost_before !=
          cold_advice.workload_cost_before ||
      incremental_advice.workload_cost_after !=
          cold_advice.workload_cost_after ||
      incremental_advice.total_size_bytes != cold_advice.total_size_bytes ||
      incremental_advice.evaluations != cold_advice.evaluations) {
    std::fprintf(stderr,
                 "FAIL: advisor output from incrementally resealed caches"
                 " diverges (seed %llu)\n",
                 static_cast<unsigned long long>(seed));
    return 1;
  }

  const double speedup = cold_ms / (reseal_ms > 0 ? reseal_ms : 1e-9);
  std::printf("# drift staled %zu of %zu queries (tables:", k, n);
  for (TableId t : drift->drifted_tables) {
    std::printf(" %d", static_cast<int>(t));
  }
  std::printf(")\n");
  std::printf("%-28s %12s %16s\n", "path", "wall-ms", "optimizer-calls");
  std::printf("%-28s %12.1f %16lld\n", "initial build (all N)",
              setup->build_ms, static_cast<long long>(cold_calls));
  std::printf("%-28s %12.1f %16lld\n", "cold rebuild (all N)", cold_ms,
              static_cast<long long>(cold_rebuild_calls));
  std::printf("%-28s %12.1f %16lld   (%.1fx faster than rebuilding)\n",
              "incremental reseal (k)", reseal_ms,
              static_cast<long long>(reseal_calls), speedup);

  if (!json_path.empty()) {
    bench::JsonSummary summary;
    summary.Set("bench", std::string("incremental_reseal"));
    summary.Set("replicas", static_cast<int64_t>(replicas));
    summary.Set("queries", static_cast<int64_t>(n));
    summary.Set("stale_queries", static_cast<int64_t>(k));
    summary.Set("candidates",
                static_cast<int64_t>(setup->set.candidate_ids.size()));
    summary.Set("drift_seed", static_cast<int64_t>(seed));
    summary.Set("cold_rebuild_ms", cold_ms);
    summary.Set("cold_rebuild_calls", cold_rebuild_calls);
    summary.Set("reseal_ms", reseal_ms);
    summary.Set("reseal_calls", reseal_calls);
    summary.Set("reseal_speedup", speedup);
    summary.Set("min_speedup", min_speedup);
    summary.Set("chosen_indexes",
                static_cast<int64_t>(cold_advice.chosen.size()));
    summary.Set("workload_cost_after", cold_advice.workload_cost_after);
    if (!summary.WriteTo(json_path)) return 1;
  }

  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: incremental reseal speedup %.1fx below the %.1fx"
                 " floor\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pinum

int main(int argc, char** argv) {
  int replicas = -1;  // unspecified: 3x, or 1x under --smoke
  bool smoke = false;
  std::string json_path;
  double min_speedup = 0;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      replicas = std::atoi(argv[i]);
      if (replicas < 1) replicas = 1;
    }
  }
  if (replicas < 0) replicas = smoke ? 1 : 3;
  return pinum::Run(replicas, smoke, json_path, min_speedup, seed);
}
