// Ablation A1 — what the Section V-D dominance pruning buys.
//
// Runs the PINUM plan-cache call with and without the dominance rule
// ("if S_A is a subset of S_B and cost(S_A) < cost(S_B), remove plan B"),
// comparing exported plan counts and build time. Without the rule, the
// planner still deduplicates per (order, requirement) key, mirroring a
// naive harvest-everything implementation.
#include <cstdio>

#include "bench_util.h"
#include "pinum/pinum_builder.h"

namespace pinum {
namespace {

int Run() {
  StarSchemaWorkload w = bench::MakePaperWorkload();
  CandidateSet set = bench::MakeCandidates(w);
  std::printf("# Ablation A1: Section V-D dominance pruning on/off\n");
  std::printf("%-5s %-7s | %-10s %-10s | %-10s %-10s | %-9s\n", "query",
              "IOCs", "plans_on", "ms_on", "plans_off", "ms_off",
              "plan_cut");
  for (const Query& q : w.queries()) {
    PinumBuildOptions on;
    PinumBuildStats on_stats;
    auto cache_on = BuildInumCachePinum(q, w.db().catalog(), set,
                                        w.db().stats(), on, &on_stats);
    PinumBuildOptions off;
    off.base_knobs.hooks.disable_dominance_pruning = true;
    PinumBuildStats off_stats;
    auto cache_off = BuildInumCachePinum(q, w.db().catalog(), set,
                                         w.db().stats(), off, &off_stats);
    if (!cache_on.ok() || !cache_off.ok()) return 1;
    std::printf("%-5s %-7llu | %-10zu %-10.1f | %-10zu %-10.1f | %-8.1fx\n",
                q.name.c_str(),
                static_cast<unsigned long long>(on_stats.iocs_total),
                cache_on->NumPlans(), on_stats.plan_cache_ms,
                cache_off->NumPlans(), off_stats.plan_cache_ms,
                static_cast<double>(cache_off->NumPlans()) /
                    std::max<size_t>(1, cache_on->NumPlans()));
  }
  std::printf(
      "# the pruning preserves per-configuration optima (see pinum_test's\n"
      "# exactness property) while shrinking the cache and lookup time\n");
  return 0;
}

}  // namespace
}  // namespace pinum

int main() { return pinum::Run(); }
