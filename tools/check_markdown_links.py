#!/usr/bin/env python3
"""Checks that relative markdown links in this repo resolve.

Scans every tracked .md file for inline links/images `[text](target)`,
skips absolute URLs (http/https/mailto), and verifies that each relative
target exists on disk; same-file `#anchor` targets are checked against
the file's headings (GitHub slug rules, simplified). Exits 1 listing
every broken link, so README/ROADMAP/docs cross-references cannot rot.

Usage: tools/check_markdown_links.py [root]  (default: repo root)
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_DIRS = {".git", "build", "build-asan", "build-scalar", ".claude"}


def slugify(heading: str) -> str:
    """GitHub-style anchor slug (simplified: ASCII-ish headings)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        return {slugify(h) for h in HEADING_RE.findall(f.read())}


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    broken = []
    checked = 0
    for path in sorted(md_files(root)):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        rel = os.path.relpath(path, root)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            file_part, _, anchor = target.partition("#")
            dest = path if not file_part else os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(dest):
                broken.append(f"{rel}: ({target}) -> missing file {file_part}")
                continue
            if anchor and dest.endswith(".md"):
                if slugify(anchor) not in anchors_of(dest):
                    broken.append(f"{rel}: ({target}) -> missing anchor "
                                  f"#{anchor}")
    if broken:
        print(f"{len(broken)} broken markdown link(s):")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"all {checked} relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
