// Golden plan-stability corpus maintenance (see docs/WORKLOADS.md and
// src/workload/plan_corpus.h).
//
//   corpus_tool --update [--dir tests/corpus]
//       Regenerates every golden file in the default grid (all workload
//       families x seeds {1,2}). Run this — and review the diff — when a
//       cost-model/advisor change intentionally moves plans.
//
//   corpus_tool --diff [--dir tests/corpus]
//       Rebuilds each corpus in memory and diffs it against the checked-
//       in golden file, printing exactly which (workload, query, plan)
//       entries changed. Exit 1 on any delta or missing file — the CI
//       corpus-diff job's failure signal.
//
//   corpus_tool --print --family <name> [--seed N]
//       Dumps one corpus text to stdout.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "workload/plan_corpus.h"
#include "workload/workload_family.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return out.good();
}

int Usage() {
  std::cerr << "usage: corpus_tool --update|--diff [--dir DIR]\n"
            << "       corpus_tool --print --family NAME [--seed N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode, dir = "tests/corpus", family;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--update" || arg == "--diff" || arg == "--print") {
      mode = arg;
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--family" && i + 1 < argc) {
      family = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }
  if (mode.empty()) return Usage();

  if (mode == "--print") {
    if (family.empty()) return Usage();
    pinum::CorpusSpec spec;
    spec.family = family;
    spec.seed = seed;
    auto text = pinum::BuildCorpusText(spec);
    if (!text.ok()) {
      std::cerr << "build failed: " << text.status().ToString() << "\n";
      return 2;
    }
    std::cout << *text;
    return 0;
  }

  int failures = 0;
  for (const pinum::CorpusSpec& spec : pinum::DefaultCorpusSpecs()) {
    const std::string path = dir + "/" + pinum::CorpusFileName(spec);
    auto text = pinum::BuildCorpusText(spec);
    if (!text.ok()) {
      std::cerr << path << ": build failed: " << text.status().ToString()
                << "\n";
      ++failures;
      continue;
    }
    if (mode == "--update") {
      if (!WriteFile(path, *text)) {
        std::cerr << path << ": write failed\n";
        ++failures;
      } else {
        std::cout << "wrote " << path << "\n";
      }
      continue;
    }
    std::string golden;
    if (!ReadFile(path, &golden)) {
      std::cerr << path << ": missing golden file (run corpus_tool --update "
                << "and commit the result)\n";
      ++failures;
      continue;
    }
    const auto deltas = pinum::DiffCorpusText(golden, *text);
    if (deltas.empty()) {
      std::cout << path << ": OK\n";
    } else {
      std::cout << path << ": " << deltas.size() << " entries changed\n"
                << pinum::FormatDeltas(deltas);
      ++failures;
    }
  }
  if (failures > 0 && mode == "--diff") {
    std::cerr << "\ncorpus drift detected: if the plan/cost change is "
              << "intentional, regenerate with corpus_tool --update and "
              << "commit the reviewed diff.\n";
  }
  return failures == 0 ? 0 : 1;
}
