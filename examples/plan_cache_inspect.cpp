// Plan-cache inspector: shows what one hooked optimizer call exports —
// the per-interesting-order-combination plan set of Section V-D — and
// how the INUM cost derivation re-prices it per configuration.
//
//   $ ./plan_cache_inspect [query_index 0..9]
#include <cstdio>
#include <cstdlib>

#include "advisor/candidate_generator.h"
#include "inum/sealed_cache.h"
#include "optimizer/interesting_orders.h"
#include "pinum/pinum_builder.h"
#include "whatif/candidate_set.h"
#include "workload/star_schema.h"

using namespace pinum;

int main(int argc, char** argv) {
  const size_t qi = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 2;
  StarSchemaSpec spec;
  auto workload = StarSchemaWorkload::Create(spec);
  if (!workload.ok() || qi >= workload->queries().size()) return 1;
  Database& db = workload->db();
  const Query& q = workload->queries()[qi];
  std::printf("query: %s\n\n", q.ToSql(db.catalog()).c_str());

  const auto orders = PerTableInterestingOrders(q);
  std::printf("interesting orders per table:\n");
  for (size_t pos = 0; pos < orders.size(); ++pos) {
    const TableDef* t = db.catalog().FindTable(q.tables[pos]);
    std::printf("  %-8s:", t->name.c_str());
    for (const ColumnRef& c : orders[pos]) {
      std::printf(" %s",
                  t->columns[static_cast<size_t>(c.column)].name.c_str());
    }
    std::printf("\n");
  }
  std::printf("interesting-order combinations: %llu\n\n",
              static_cast<unsigned long long>(CountIocs(orders)));

  CandidateOptions copt;
  auto cands =
      GenerateCandidates({q}, db.catalog(), db.stats(), copt);
  auto set = MakeCandidateSet(db.catalog(), cands);

  PinumBuildOptions opts;
  PinumBuildStats stats;
  auto cache =
      BuildInumCachePinum(q, db.catalog(), *set, db.stats(), opts, &stats);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 1;
  }
  std::printf("PINUM build: %lld optimizer calls, %.1f ms, %zu cached "
              "plans (%lld exported before dedup)\n\n",
              static_cast<long long>(stats.plan_cache_calls +
                                     stats.access_cost_calls),
              stats.plan_cache_ms + stats.access_cost_ms,
              stats.plans_cached,
              static_cast<long long>(stats.plans_exported));

  std::printf("cached plans (internal cost + per-table requirements):\n");
  for (const CachedPlan& plan : cache->plans()) {
    std::printf("  internal=%-12.0f %s", plan.internal_cost,
                plan.has_nlj ? "[NLJ] " : "");
    for (const LeafSlot& slot : plan.slots) {
      const TableDef* t = db.catalog().FindTable(slot.table);
      switch (slot.req) {
        case LeafReqKind::kUnordered:
          std::printf(" %s:any", t->name.c_str());
          break;
        case LeafReqKind::kOrdered:
          std::printf(
              " %s:ord(%s)", t->name.c_str(),
              t->columns[static_cast<size_t>(slot.column.column)].name
                  .c_str());
          break;
        case LeafReqKind::kProbe:
          std::printf(
              " %s:probe(%s)x%lld", t->name.c_str(),
              t->columns[static_cast<size_t>(slot.column.column)].name
                  .c_str(),
              static_cast<long long>(slot.multiplier));
          break;
      }
    }
    std::printf("\n");
  }

  // Seal once for serving: dominated plans pruned, per-slot map probes
  // flattened into dense per-index vectors.
  const SealedCache sealed = SealedCache::Seal(*cache, set->NumIndexIds());
  std::printf("\nsealed for serving: %zu plans (%zu dominated pruned), "
              "%zu shared access-cost terms\n",
              sealed.NumPlans(), sealed.NumPlansPruned(), sealed.NumTerms());

  // Re-price three configurations without touching the optimizer.
  std::printf("\ncost derivation (no optimizer calls, sealed form):\n");
  std::printf("  no indexes          : %.0f\n", sealed.Cost({}));
  std::printf("  all %3zu candidates : %.0f\n", set->candidate_ids.size(),
              sealed.Cost(set->candidate_ids));
  IndexConfig half(set->candidate_ids.begin(),
                   set->candidate_ids.begin() +
                       static_cast<long>(set->candidate_ids.size() / 2));
  std::printf("  first half          : %.0f\n", sealed.Cost(half));
  return 0;
}
