// Quickstart: define a schema, load statistics, parse a SQL query,
// optimize it, and answer a what-if question — the core PINUM loop in
// ~100 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "catalog/catalog.h"
#include "optimizer/optimizer.h"
#include "parser/parser.h"
#include "storage/database.h"
#include "whatif/whatif_index.h"

using namespace pinum;

int main() {
  // 1. Schema: an orders fact table and a customers dimension.
  Database db;
  TableDef customers;
  customers.name = "customers";
  customers.columns = {{"id", TypeId::kInt64},
                       {"region", TypeId::kInt64},
                       {"segment", TypeId::kInt64}};
  TableId customers_id = *db.catalog().AddTable(customers);

  TableDef orders;
  orders.name = "orders";
  orders.columns = {{"id", TypeId::kInt64},
                    {"customer_id", TypeId::kInt64},
                    {"amount", TypeId::kInt64},
                    {"order_date", TypeId::kInt64}};
  TableId orders_id = *db.catalog().AddTable(orders);

  // 2. Statistics (what the optimizer actually consumes): 10M orders,
  // 100k customers, uniform values.
  auto uniform_stats = [&](TableId t, double rows,
                           const std::vector<std::pair<Value, Value>>& ranges) {
    TableStats stats;
    stats.row_count = rows;
    stats.RecomputePages(*db.catalog().FindTable(t));
    for (auto [lo, hi] : ranges) {
      ColumnStats cs;
      cs.min = lo;
      cs.max = hi;
      cs.n_distinct = std::min(rows, static_cast<double>(hi - lo + 1));
      cs.histogram = Histogram::Uniform(lo, hi);
      stats.columns.push_back(cs);
    }
    // Surrogate keys are stored in insertion order.
    stats.columns[0].correlation = 1.0;
    db.stats().Put(t, std::move(stats));
  };
  uniform_stats(customers_id, 100'000,
                {{0, 99'999}, {0, 49}, {0, 9}});
  uniform_stats(orders_id, 10'000'000,
                {{0, 9'999'999}, {0, 99'999}, {1, 100'000}, {0, 3'650}});

  // 3. Parse and optimize a query.
  const std::string sql =
      "SELECT customers.region, orders.amount FROM orders, customers "
      "WHERE orders.customer_id = customers.id AND orders.order_date >= 3614 "
      "ORDER BY customers.region";
  auto query = ParseSql(sql, db.catalog());
  if (!query.ok()) {
    std::fprintf(stderr, "parse: %s\n", query.status().ToString().c_str());
    return 1;
  }
  Optimizer optimizer(&db.catalog(), &db.stats());
  auto plan = optimizer.Optimize(*query, PlannerKnobs{});
  if (!plan.ok()) {
    std::fprintf(stderr, "optimize: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("SQL: %s\n\nPlan without indexes (cost %.0f):\n%s\n",
              sql.c_str(), plan->best->cost.total,
              plan->best->Explain(db.catalog()).c_str());

  // 4. What-if question: would an index on orders(order_date, customer_id,
  // amount) help? No index is built — only its statistics are simulated.
  std::vector<IndexDef> hypothetical = {MakeWhatIfIndex(
      "orders_date_cov", *db.catalog().FindTable(orders_id), {3, 1, 2},
      10'000'000)};
  auto whatif_catalog =
      CatalogWithIndexes(db.catalog(), hypothetical, nullptr);
  Optimizer whatif_optimizer(&*whatif_catalog, &db.stats());
  auto whatif_plan = whatif_optimizer.Optimize(*query, PlannerKnobs{});
  std::printf("Plan with what-if index (cost %.0f):\n%s\n",
              whatif_plan->best->cost.total,
              whatif_plan->best->Explain(*whatif_catalog).c_str());
  std::printf("What-if benefit: %.1f%% cost reduction\n",
              100.0 * (1.0 - whatif_plan->best->cost.total /
                                 plan->best->cost.total));
  return 0;
}
