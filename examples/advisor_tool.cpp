// Index-selection tool (the paper's Section V-E application): generates
// the star-schema workload, builds every query's PINUM cache in parallel
// through the WorkloadCacheBuilder (sharing access-cost calls across
// queries), and greedily picks indexes under a space budget — evaluating
// thousands of configurations with pure arithmetic.
//
// With --save the sealed caches are persisted to a versioned snapshot
// file (docs/SNAPSHOT_FORMAT.md); with --load the build step is skipped
// entirely — no optimizer call is made — and the advisor serves from the
// restored caches, with bit-identical suggestions. --load-mmap goes one
// step further: the cache section is not even copied — the file is
// mapped read-only and the advisor serves straight from the page cache
// (format v3's arena records are position-independent), printing the
// map-vs-decode wall time side by side. With --reseal K the
// tool additionally simulates statistics drift staling ~K queries
// (seeded, src/workload/drift.h) and repairs the serving state through
// WorkloadCacheBuilder::RebuildQueries — k queries' worth of optimizer
// calls instead of a whole-workload rebuild — before advising; combined
// with --save, the re-save patches only the resealed cache records.
//
// With --search the greedy pass is followed by the anytime randomized
// search (src/advisor/search_advisor.h): seeded parallel restarts plus
// swap/backtracking moves, printed as a side-by-side quality comparison
// — the configurations the single greedy sweep cannot see. --seed and
// --restarts shape it; the result is reproducible bit-for-bit for a
// fixed (workload, options) pair.
//
//   $ ./advisor_tool [budget_mb] [--save FILE | --load FILE |
//                    --load-mmap FILE] [--reseal K]
//                    [--search] [--seed N] [--restarts N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "advisor/search_advisor.h"
#include "common/stopwatch.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"
#include "workload/drift.h"
#include "workload/star_schema.h"

using namespace pinum;

int main(int argc, char** argv) {
  AdvisorOptions aopts;
  SearchOptions sopts;
  bool run_search = false;
  std::string save_path;
  std::string load_path;
  std::string mmap_path;
  long long reseal_target = -1;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--save") == 0 ||
        std::strcmp(argv[a], "--load") == 0 ||
        std::strcmp(argv[a], "--load-mmap") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s requires a file path\n", argv[a]);
        return 2;
      }
      std::string& slot = std::strcmp(argv[a], "--save") == 0 ? save_path
                          : std::strcmp(argv[a], "--load") == 0
                              ? load_path
                              : mmap_path;
      slot = argv[++a];
    } else if (std::strcmp(argv[a], "--reseal") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--reseal requires a stale-query target\n");
        return 2;
      }
      reseal_target = std::atoll(argv[++a]);
    } else if (std::strcmp(argv[a], "--search") == 0) {
      run_search = true;
    } else if (std::strcmp(argv[a], "--seed") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--seed requires a value\n");
        return 2;
      }
      sopts.seed = static_cast<uint64_t>(std::atoll(argv[++a]));
    } else if (std::strcmp(argv[a], "--restarts") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--restarts requires a value\n");
        return 2;
      }
      sopts.max_restarts = std::atoi(argv[++a]);
    } else if (std::strncmp(argv[a], "--", 2) == 0) {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: advisor_tool [budget_mb] "
                   "[--save FILE | --load FILE | --load-mmap FILE] "
                   "[--reseal K] [--search] [--seed N] [--restarts N]\n",
                   argv[a]);
      return 2;
    } else {
      aopts.budget_bytes = std::atoll(argv[a]) * 1024 * 1024;
    }
  }
  if (static_cast<int>(!save_path.empty()) +
          static_cast<int>(!load_path.empty()) +
          static_cast<int>(!mmap_path.empty()) >
      1) {
    std::fprintf(stderr,
                 "--save, --load, and --load-mmap are mutually exclusive\n");
    return 2;
  }
  if (reseal_target >= 0 && (!load_path.empty() || !mmap_path.empty())) {
    std::fprintf(stderr, "--reseal needs a fresh build (not --load)\n");
    return 2;
  }

  StarSchemaSpec spec;
  auto workload = StarSchemaWorkload::Create(spec);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  Database& db = workload->db();
  std::printf("star schema: %zu tables, %zu queries\n",
              workload->tables().size(), workload->queries().size());

  CandidateOptions copt;
  auto candidates = GenerateCandidates(workload->queries(), db.catalog(),
                                       db.stats(), copt);
  auto set = MakeCandidateSet(db.catalog(), candidates);
  std::printf("candidate indexes: %zu\n", set->candidate_ids.size());

  WorkloadCacheBuilder builder(&db.catalog(), &*set, &db.stats());
  // The serving-ready caches come from one of two places: a fresh
  // parallel PINUM build, or a snapshot written by an earlier --save —
  // the restart path, milliseconds instead of optimizer calls.
  std::vector<SealedCache> serving;
  if (!mmap_path.empty()) {
    // Zero-copy restart: validate + mmap once, then serve straight from
    // the mapped arena images. The caches borrow the mapping (each
    // arena co-owns the file handle), so `serving` stays valid after
    // the result below goes out of scope.
    Stopwatch map_timer;
    std::vector<std::string> names;
    auto mapped = builder.LoadSnapshotMapped(mmap_path, &names);
    if (!mapped.ok()) {
      std::fprintf(stderr, "%s\n", mapped.status().ToString().c_str());
      return 1;
    }
    const double map_ms = map_timer.ElapsedMillis();
    const std::vector<Query>& queries = workload->queries();
    bool same_workload = names.size() == queries.size();
    for (size_t i = 0; same_workload && i < queries.size(); ++i) {
      same_workload = names[i] == queries[i].name;
    }
    if (!same_workload) {
      std::fprintf(stderr,
                   "snapshot %s holds %zu caches for a different query set; "
                   "this workload has %zu queries — rebuild with --save\n",
                   mmap_path.c_str(), names.size(), queries.size());
      return 1;
    }
    const std::vector<size_t> stale =
        builder.StaleQueries(names, mapped->stamps, queries);
    if (!stale.empty()) {
      // Repair in place: RebuildQueries replaces exactly the stale
      // queries' borrowed caches with fresh heap seals; the rest keep
      // serving from the mapping.
      std::vector<std::string> stale_names;
      for (size_t i : stale) stale_names.push_back(queries[i].name);
      Status st = builder.RebuildQueries(stale_names, queries, &*mapped);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    // The headline number: map-and-validate vs decode-everything on the
    // same file (both serve bit-identical costs; only the copies differ).
    Stopwatch decode_timer;
    auto decoded = builder.LoadSnapshot(mmap_path);
    const double decode_ms =
        decoded.ok() ? decode_timer.ElapsedMillis() : -1.0;
    size_t borrowed_bytes = 0;
    for (const SealedCache& c : mapped->sealed) {
      borrowed_bytes += c.ArenaBytes();
    }
    std::printf("snapshot mapped: %zu sealed caches (%.2f MB of arenas "
                "borrowed from the page cache) in %.2f ms; %zu stale "
                "resealed\n",
                mapped->sealed.size(), borrowed_bytes / 1048576.0, map_ms,
                stale.size());
    if (decode_ms >= 0) {
      std::printf("decode-load of the same file: %.2f ms -> mmap is "
                  "%.1fx faster to first answer\n",
                  decode_ms, map_ms > 0 ? decode_ms / map_ms : 0.0);
    }
    serving = std::move(mapped->sealed);
  } else if (!load_path.empty()) {
    Stopwatch load_timer;
    auto snapshot = builder.LoadSnapshot(load_path);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
      return 1;
    }
    // The epoch binds catalog/candidates/stats but deliberately not the
    // query set (any workload over the same universe may snapshot), so
    // check here that these caches really are this workload's — serving
    // another query set's caches would be silently wrong suggestions.
    const std::vector<Query>& queries = workload->queries();
    bool same_workload = snapshot->query_names.size() == queries.size();
    for (size_t i = 0; same_workload && i < queries.size(); ++i) {
      same_workload = snapshot->query_names[i] == queries[i].name;
    }
    if (!same_workload) {
      std::fprintf(stderr,
                   "snapshot %s holds %zu caches for a different query set; "
                   "this workload has %zu queries — rebuild with --save\n",
                   load_path.c_str(), snapshot->query_names.size(),
                   queries.size());
      return 1;
    }
    // Per-query epoch stamps: a snapshot that predates stats drift or
    // append-only universe growth still loads — repair exactly the
    // stale queries instead of rebuilding the workload. (This tool
    // regenerates the same world every run, so the set is normally
    // empty; it is the production restart path nonetheless.)
    const std::vector<size_t> stale =
        builder.StaleQueries(*snapshot, queries);
    if (!stale.empty()) {
      std::vector<std::string> stale_names;
      for (size_t i : stale) stale_names.push_back(queries[i].name);
      WorkloadCacheResult restored;
      restored.caches.resize(queries.size());
      restored.per_query.resize(queries.size());
      restored.stamps = snapshot->query_stamps;
      restored.sealed = std::move(snapshot->sealed);
      WorkloadCacheStats totals;
      Status st = builder.RebuildQueries(stale_names, queries, &restored,
                                         &totals);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("snapshot was stale for %zu of %zu queries; resealed "
                  "them with %lld optimizer calls\n",
                  stale.size(), queries.size(),
                  static_cast<long long>(totals.plan_cache_calls +
                                         totals.access_cost_calls));
      snapshot->sealed = std::move(restored.sealed);
    }
    std::printf("snapshot restored: %zu sealed caches from %s in %.1f ms "
                "(%zu stale, %s)\n",
                snapshot->sealed.size(), load_path.c_str(),
                load_timer.ElapsedMillis(), stale.size(),
                stale.empty() ? "0 optimizer calls" : "resealed above");
    serving = std::move(snapshot->sealed);
  } else {
    // One PINUM cache per query — a handful of optimizer calls each
    // instead of the hundreds-to-thousands classic INUM would need —
    // built concurrently with access-cost calls shared across queries.
    auto built = builder.BuildAll(workload->queries());
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < workload->queries().size(); ++i) {
      const QueryBuildStats& qs = built->per_query[i];
      std::printf("  %s: %zu cached plans (%lld optimizer calls, "
                  "%lld shared)\n",
                  workload->queries()[i].name.c_str(), qs.plans_cached,
                  static_cast<long long>(qs.plan_cache_calls +
                                         qs.access_cost_calls),
                  static_cast<long long>(qs.access_calls_saved));
    }
    std::printf("total optimizer calls: %lld (%lld saved by sharing, "
                "%.1f ms wall)\n",
                static_cast<long long>(built->totals.plan_cache_calls +
                                       built->totals.access_cost_calls),
                static_cast<long long>(built->totals.access_calls_saved),
                built->totals.wall_ms);
    std::printf("sealed for serving: %zu of %zu plans pruned as dominated, "
                "%zu shared terms, %zu postings (%.1f ms)\n",
                built->totals.plans_pruned, built->totals.plans_cached,
                built->totals.terms, built->totals.postings,
                built->totals.seal_ms);
    const int64_t full_build_calls =
        built->totals.plan_cache_calls + built->totals.access_cost_calls;
    if (!save_path.empty()) {
      Stopwatch save_timer;
      Status st =
          builder.SaveSnapshot(save_path, *built, workload->queries());
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("snapshot saved to %s in %.1f ms "
                  "(reload with --load to skip the build)\n",
                  save_path.c_str(), save_timer.ElapsedMillis());
    }

    // Incremental reseal demo: drift the statistics under the serving
    // layer (seeded) and repair only the stale queries in place —
    // the maintenance path a long-lived what-if service runs on every
    // re-ANALYZE instead of a full rebuild.
    if (reseal_target >= 0) {
      auto drift =
          ApplyDrift(workload->queries(), &*set, &db.stats(),
                     static_cast<size_t>(reseal_target), /*seed=*/1);
      if (!drift.ok()) {
        std::fprintf(stderr, "%s\n", drift.status().ToString().c_str());
        return 1;
      }
      std::printf("\nsimulated stats drift on %zu tables -> %zu of %zu "
                  "queries stale\n",
                  drift->drifted_tables.size(), drift->stale_queries.size(),
                  workload->queries().size());
      WorkloadCacheStats reseal_totals;
      Stopwatch reseal_timer;
      Status st = builder.RebuildQueries(drift->stale_queries,
                                         workload->queries(), &*built,
                                         &reseal_totals);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("incremental reseal: %lld optimizer calls, %.1f ms "
                  "(a full rebuild would re-pay %lld calls)\n",
                  static_cast<long long>(reseal_totals.plan_cache_calls +
                                         reseal_totals.access_cost_calls),
                  reseal_timer.ElapsedMillis(),
                  static_cast<long long>(full_build_calls));
      if (!save_path.empty()) {
        SnapshotSaveStats save_stats;
        Status resave = builder.SaveSnapshot(save_path, *built,
                                             workload->queries(),
                                             &save_stats);
        if (!resave.ok()) {
          std::fprintf(stderr, "%s\n", resave.ToString().c_str());
          return 1;
        }
        std::printf("snapshot patched in place: %zu cache records "
                    "re-encoded, %zu reused verbatim\n",
                    save_stats.caches_encoded, save_stats.caches_patched);
      }
    }
    serving = std::move(built->sealed);
  }

  // Delta pricing from the sealed serving form: every greedy iteration
  // pins chosen-so-far into per-query contexts (sharded over the
  // builder's pool) and sweeps all surviving candidates through their
  // posting overlays.
  const WorkloadCostEvaluator evaluator(&serving, builder.pool());
  const AdvisorResult result = RunGreedyAdvisor(evaluator, *set, aopts);

  // The counter split (src/advisor/greedy_advisor.h): `evaluations`
  // counts configurations priced — the optimizer calls a classic what-if
  // advisor would have made — while `full_evaluations` counts how few of
  // those needed a full-path resolution on the delta path.
  std::printf("\nbudget %.0f MB -> %zu indexes chosen (%.0f MB), "
              "%lld what-if configurations priced from the cache "
              "(%lld full-path, rest delta)\n",
              aopts.budget_bytes / 1048576.0, result.chosen.size(),
              result.total_size_bytes / 1048576.0,
              static_cast<long long>(result.evaluations),
              static_cast<long long>(result.full_evaluations));
  std::printf("estimated workload cost: %.0f -> %.0f (%.1f%% better)\n",
              result.workload_cost_before, result.workload_cost_after,
              100 * (1 - result.workload_cost_after /
                             result.workload_cost_before));
  std::printf("\nsuggested indexes (CREATE INDEX order):\n");
  for (const AdvisorStep& step : result.steps) {
    const IndexDef* def = set->universe.FindIndex(step.chosen);
    const TableDef* table = db.catalog().FindTable(def->table);
    std::string cols;
    for (ColumnIdx c : def->key_columns) {
      if (!cols.empty()) cols += ", ";
      cols += table->columns[static_cast<size_t>(c)].name;
    }
    std::printf("  CREATE INDEX ON %s (%s);   -- benefit %.0f, %.1f MB\n",
                table->name.c_str(), cols.c_str(), step.benefit,
                step.size_bytes / 1048576.0);
  }

  if (run_search) {
    sopts.base = aopts;
    const SearchResult search = RunSearchAdvisor(evaluator, *set, sopts);
    std::printf("\nanytime search (seed %llu, %d restarts + swap moves, "
                "%.1f ms): %lld configurations priced, %lld sweeps "
                "pruned\n",
                static_cast<unsigned long long>(sopts.seed),
                sopts.max_restarts, search.wall_ms,
                static_cast<long long>(search.evaluations),
                static_cast<long long>(search.swap_candidates_pruned));
    std::printf("  greedy cost %.0f vs search cost %.0f (%lld restarts, "
                "%lld swaps accepted)\n",
                search.greedy_cost_after, search.workload_cost_after,
                static_cast<long long>(search.restarts_completed),
                static_cast<long long>(search.swaps_accepted));
    if (search.workload_cost_after < search.greedy_cost_after) {
      std::printf("  search beat greedy by %.2f%%; its configuration "
                  "(%zu indexes, %.0f MB):\n",
                  100 * (1 - search.workload_cost_after /
                                 search.greedy_cost_after),
                  search.chosen.size(),
                  search.total_size_bytes / 1048576.0);
      for (IndexId id : search.chosen) {
        const IndexDef* def = set->universe.FindIndex(id);
        const TableDef* table = db.catalog().FindTable(def->table);
        std::string cols;
        for (ColumnIdx c : def->key_columns) {
          if (!cols.empty()) cols += ", ";
          cols += table->columns[static_cast<size_t>(c)].name;
        }
        std::printf("  CREATE INDEX ON %s (%s);   -- %.1f MB\n",
                    table->name.c_str(), cols.c_str(),
                    IndexSizeBytes(*def) / 1048576.0);
      }
    } else {
      std::printf("  greedy was already optimal within the search "
                  "horizon; suggestions above stand\n");
    }
  }
  return 0;
}
