// Index-selection tool (the paper's Section V-E application): generates
// the star-schema workload, builds every query's PINUM cache in parallel
// through the WorkloadCacheBuilder (sharing access-cost calls across
// queries), and greedily picks indexes under a space budget — evaluating
// thousands of configurations with pure arithmetic.
//
//   $ ./advisor_tool [budget_mb]
#include <cstdio>
#include <cstdlib>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "whatif/candidate_set.h"
#include "workload/cache_manager.h"
#include "workload/star_schema.h"

using namespace pinum;

int main(int argc, char** argv) {
  StarSchemaSpec spec;
  auto workload = StarSchemaWorkload::Create(spec);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  Database& db = workload->db();
  std::printf("star schema: %zu tables, %zu queries\n",
              workload->tables().size(), workload->queries().size());

  CandidateOptions copt;
  auto candidates = GenerateCandidates(workload->queries(), db.catalog(),
                                       db.stats(), copt);
  auto set = MakeCandidateSet(db.catalog(), candidates);
  std::printf("candidate indexes: %zu\n", set->candidate_ids.size());

  // One PINUM cache per query — a handful of optimizer calls each instead
  // of the hundreds-to-thousands classic INUM would need — built
  // concurrently with access-cost calls shared across queries.
  WorkloadCacheBuilder builder(&db.catalog(), &*set, &db.stats());
  auto built = builder.BuildAll(workload->queries());
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < workload->queries().size(); ++i) {
    const QueryBuildStats& qs = built->per_query[i];
    std::printf("  %s: %zu cached plans (%lld optimizer calls, "
                "%lld shared)\n",
                workload->queries()[i].name.c_str(), qs.plans_cached,
                static_cast<long long>(qs.plan_cache_calls +
                                       qs.access_cost_calls),
                static_cast<long long>(qs.access_calls_saved));
  }
  std::printf("total optimizer calls: %lld (%lld saved by sharing, "
              "%.1f ms wall)\n",
              static_cast<long long>(built->totals.plan_cache_calls +
                                     built->totals.access_cost_calls),
              static_cast<long long>(built->totals.access_calls_saved),
              built->totals.wall_ms);
  std::printf("sealed for serving: %zu of %zu plans pruned as dominated, "
              "%zu shared terms, %zu postings (%.1f ms)\n",
              built->totals.plans_pruned, built->totals.plans_cached,
              built->totals.terms, built->totals.postings,
              built->totals.seal_ms);

  AdvisorOptions aopts;
  if (argc > 1) {
    aopts.budget_bytes = std::atoll(argv[1]) * 1024 * 1024;
  }
  // Delta pricing from the sealed serving form: every greedy iteration
  // pins chosen-so-far into per-query contexts (sharded over the
  // builder's pool) and sweeps all surviving candidates through their
  // posting overlays.
  const WorkloadCostEvaluator evaluator(&built->sealed, builder.pool());
  const AdvisorResult result = RunGreedyAdvisor(evaluator, *set, aopts);

  std::printf("\nbudget %.0f MB -> %zu indexes chosen (%.0f MB), "
              "%lld what-if evaluations answered from the cache\n",
              aopts.budget_bytes / 1048576.0, result.chosen.size(),
              result.total_size_bytes / 1048576.0,
              static_cast<long long>(result.evaluations));
  std::printf("estimated workload cost: %.0f -> %.0f (%.1f%% better)\n",
              result.workload_cost_before, result.workload_cost_after,
              100 * (1 - result.workload_cost_after /
                             result.workload_cost_before));
  std::printf("\nsuggested indexes (CREATE INDEX order):\n");
  for (const AdvisorStep& step : result.steps) {
    const IndexDef* def = set->universe.FindIndex(step.chosen);
    const TableDef* table = db.catalog().FindTable(def->table);
    std::string cols;
    for (ColumnIdx c : def->key_columns) {
      if (!cols.empty()) cols += ", ";
      cols += table->columns[static_cast<size_t>(c)].name;
    }
    std::printf("  CREATE INDEX ON %s (%s);   -- benefit %.0f, %.1f MB\n",
                table->name.c_str(), cols.c_str(), step.benefit,
                step.size_bytes / 1048576.0);
  }
  return 0;
}
