// Index-selection tool (the paper's Section V-E application): generates
// the star-schema workload, builds PINUM caches with a handful of
// optimizer calls per query, and greedily picks indexes under a space
// budget — evaluating thousands of configurations with pure arithmetic.
//
//   $ ./advisor_tool [budget_mb]
#include <cstdio>
#include <cstdlib>

#include "advisor/candidate_generator.h"
#include "advisor/greedy_advisor.h"
#include "pinum/pinum_builder.h"
#include "whatif/candidate_set.h"
#include "workload/star_schema.h"

using namespace pinum;

int main(int argc, char** argv) {
  StarSchemaSpec spec;
  auto workload = StarSchemaWorkload::Create(spec);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  Database& db = workload->db();
  std::printf("star schema: %zu tables, %zu queries\n",
              workload->tables().size(), workload->queries().size());

  CandidateOptions copt;
  auto candidates = GenerateCandidates(workload->queries(), db.catalog(),
                                       db.stats(), copt);
  auto set = MakeCandidateSet(db.catalog(), candidates);
  std::printf("candidate indexes: %zu\n", set->candidate_ids.size());

  // One PINUM cache per query: 4 optimizer calls each, instead of the
  // hundreds-to-thousands classic INUM would need.
  std::vector<InumCache> caches;
  int64_t total_calls = 0;
  for (const Query& q : workload->queries()) {
    PinumBuildOptions opts;
    PinumBuildStats stats;
    auto cache = BuildInumCachePinum(q, db.catalog(), *set, db.stats(),
                                     opts, &stats);
    if (!cache.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                   cache.status().ToString().c_str());
      return 1;
    }
    total_calls += stats.plan_cache_calls + stats.access_cost_calls;
    std::printf("  %s: %llu IOCs -> %zu cached plans (%lld optimizer "
                "calls, %.1f ms)\n",
                q.name.c_str(),
                static_cast<unsigned long long>(stats.iocs_total),
                stats.plans_cached,
                static_cast<long long>(stats.plan_cache_calls +
                                       stats.access_cost_calls),
                stats.plan_cache_ms + stats.access_cost_ms);
    caches.push_back(std::move(*cache));
  }
  std::printf("total optimizer calls: %lld\n",
              static_cast<long long>(total_calls));

  AdvisorOptions aopts;
  if (argc > 1) {
    aopts.budget_bytes = std::atoll(argv[1]) * 1024 * 1024;
  }
  const AdvisorResult result = RunGreedyAdvisor(caches, *set, aopts);

  std::printf("\nbudget %.0f MB -> %zu indexes chosen (%.0f MB), "
              "%lld what-if evaluations answered from the cache\n",
              aopts.budget_bytes / 1048576.0, result.chosen.size(),
              result.total_size_bytes / 1048576.0,
              static_cast<long long>(result.evaluations));
  std::printf("estimated workload cost: %.0f -> %.0f (%.1f%% better)\n",
              result.workload_cost_before, result.workload_cost_after,
              100 * (1 - result.workload_cost_after /
                             result.workload_cost_before));
  std::printf("\nsuggested indexes (CREATE INDEX order):\n");
  for (const AdvisorStep& step : result.steps) {
    const IndexDef* def = set->universe.FindIndex(step.chosen);
    const TableDef* table = db.catalog().FindTable(def->table);
    std::string cols;
    for (ColumnIdx c : def->key_columns) {
      if (!cols.empty()) cols += ", ";
      cols += table->columns[static_cast<size_t>(c)].name;
    }
    std::printf("  CREATE INDEX ON %s (%s);   -- benefit %.0f, %.1f MB\n",
                table->name.c_str(), cols.c_str(), step.benefit,
                step.size_bytes / 1048576.0);
  }
  return 0;
}
