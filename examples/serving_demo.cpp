// Always-on serving demo: build a star-schema workload's caches once,
// stand up a ServingEngine, and watch it keep answering — same bits,
// new generations — while the world drifts and the watcher reseals in
// the background. The full contract is in docs/SERVING.md.
//
//   $ ./serving_demo
#include <chrono>
#include <cstdio>
#include <thread>

#include "advisor/candidate_generator.h"
#include "serving/serving_engine.h"
#include "workload/cache_manager.h"
#include "workload/drift.h"
#include "workload/star_schema.h"

using namespace pinum;

int main() {
  // 1. The paper-scale star workload and its candidate universe.
  auto workload = StarSchemaWorkload::Create(StarSchemaSpec{});
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const std::vector<Query>& queries = workload->queries();
  auto candidates = GenerateCandidates(queries, workload->db().catalog(),
                                       workload->db().stats(),
                                       CandidateOptions{});
  auto set = MakeCandidateSet(workload->db().catalog(), candidates);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }

  // 2. Build every query's cache once (the paper's "one optimizer
  // call" loop, workload-scale) and publish it as generation 1.
  WorkloadCacheBuilder builder(&workload->db().catalog(), &*set,
                               &workload->db().stats());
  auto built = builder.BuildAll(queries);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  ServingOptions options;
  options.pool = builder.pool();
  ServingEngine engine(&builder, &queries, std::move(*built), options);
  engine.StartDispatcher();
  engine.StartDriftWatcher(std::chrono::milliseconds(10));

  // 3. Ask a what-if question three ways: synchronously, batched, and
  // through the async queue. All three answer from one pinned
  // generation apiece.
  IndexConfig config;
  if (!set->candidate_ids.empty()) config.push_back(set->candidate_ids[0]);
  const CostAnswer sync = engine.Cost(config);
  std::printf("generation %llu prices config at %.1f\n",
              static_cast<unsigned long long>(sync.generation), sync.cost);
  auto submitted = engine.SubmitCost(config);
  if (!submitted.ok()) {
    std::fprintf(stderr, "%s\n", submitted.status().ToString().c_str());
    return 1;
  }
  const CostAnswer async = submitted.value().get();
  std::printf("async answer: %.1f from generation %llu (same bits: %s)\n",
              async.cost, static_cast<unsigned long long>(async.generation),
              async.cost == sync.cost ? "yes" : "NO");

  // 4. Drift the world — through WithWorld, the one rule — and let the
  // watcher publish the repair while this thread keeps serving.
  engine.WithWorld([&] {
    auto drift = ApplyDrift(queries, &*set, &workload->db().stats(),
                            queries.size(), /*seed=*/7);
    if (drift.ok()) {
      std::printf("drifted %zu tables, staled %zu queries\n",
                  drift->drifted_tables.size(),
                  drift->stale_queries.size());
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.CurrentGenerationId() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    (void)engine.Cost(config);  // serving never pauses
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const CostAnswer after = engine.Cost(config);
  std::printf("after reseal: generation %llu prices it at %.1f (%s)\n",
              static_cast<unsigned long long>(after.generation), after.cost,
              after.cost == sync.cost ? "unchanged" : "moved with the world");

  engine.StopDriftWatcher();
  engine.StopDispatcher();
  return engine.CurrentGenerationId() >= 2 ? 0 : 1;
}
