// What-if explorer: materializes a small star schema, then compares the
// optimizer's estimates for *simulated* indexes against really-built
// indexes and against actual execution — the full what-if loop of
// Section V-A end to end.
//
//   $ ./whatif_explorer
#include <cstdio>

#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "whatif/whatif_index.h"
#include "workload/star_schema.h"

using namespace pinum;

int main() {
  StarSchemaSpec spec;
  spec.scale = 0.005;  // fact: 300k rows
  spec.query_sizes = {3};
  auto workload = StarSchemaWorkload::Create(spec);
  if (!workload.ok()) return 1;
  if (auto s = workload->Materialize(1.0); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Database& db = workload->db();
  const Query& q = workload->queries()[0];
  std::printf("query: %s\n\n", q.ToSql(db.catalog()).c_str());

  Optimizer base_opt(&db.catalog(), &db.stats());
  auto base_plan = base_opt.Optimize(q, PlannerKnobs{});
  PlanExecutor exec(&db);
  auto base_run = exec.Execute(q, *base_plan->best);
  std::printf("no indexes   : estimated cost %10.0f, measured %7.1f ms, "
              "%lld rows\n",
              base_plan->best->cost.total, base_run->millis,
              static_cast<long long>(base_run->rows));

  // Candidate: covering index on the fact table's filter column.
  const TableDef* fact = db.catalog().FindTable(workload->fact_table());
  std::vector<ColumnIdx> key = {q.filters[0].column.column};
  for (ColumnIdx c : q.NeededColumns(workload->fact_table())) {
    if (c != key[0]) key.push_back(c);
  }

  // (a) Simulate it.
  std::vector<IndexDef> hypo = {MakeWhatIfIndex(
      "whatif_fact", *fact, key,
      db.stats().Find(workload->fact_table())->row_count)};
  auto overlay = CatalogWithIndexes(db.catalog(), hypo, nullptr);
  Optimizer whatif_opt(&*overlay, &db.stats());
  auto whatif_plan = whatif_opt.Optimize(q, PlannerKnobs{});
  std::printf("what-if index: estimated cost %10.0f  (simulated only — "
              "%lld leaf pages, internal pages ignored)\n",
              whatif_plan->best->cost.total,
              static_cast<long long>(hypo[0].leaf_pages));

  // (b) Build it for real, re-optimize, execute.
  auto built = db.BuildIndex("real_fact", workload->fact_table(), key);
  if (!built.ok()) return 1;
  const IndexDef* real = db.catalog().FindIndex(*built);
  Optimizer real_opt(&db.catalog(), &db.stats());
  auto real_plan = real_opt.Optimize(q, PlannerKnobs{});
  auto real_run = exec.Execute(q, *real_plan->best);
  std::printf("real index   : estimated cost %10.0f, measured %7.1f ms, "
              "%lld rows (%lld total pages incl. %lld internal)\n",
              real_plan->best->cost.total, real_run->millis,
              static_cast<long long>(real_run->rows),
              static_cast<long long>(real->total_pages),
              static_cast<long long>(real->total_pages - real->leaf_pages));

  std::printf("\nwhat-if vs real estimation error: %.3f%%   "
              "(paper Section VI-B: avg 0.33%%)\n",
              100.0 * std::abs(whatif_plan->best->cost.total -
                               real_plan->best->cost.total) /
                  real_plan->best->cost.total);
  std::printf("results identical: %s\n",
              base_run->checksum == real_run->checksum ? "yes" : "NO");
  std::printf("measured speed-up from the index: %.1fx\n",
              base_run->millis / std::max(1e-3, real_run->millis));
  return 0;
}
